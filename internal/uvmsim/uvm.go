// Package uvmsim models the paper's "optimized UVM" baseline (§5.2.2):
// Nvidia Unified Virtual Memory with the best hinting the CUDA API allows
// — cudaMemAdviseSetPreferredLocation to push consumed checkpoints toward
// the host, cudaMemPrefetchAsync to pull hinted checkpoints toward the
// device, and an application-side window that throttles prefetching to the
// device cache size to avoid page thrashing.
//
// The mechanisms that make UVM slower than an explicit cache — and that
// the paper's evaluation measures — are modeled directly:
//
//   - page-fault replay: first-touch access to non-resident pages costs a
//     per-page-batch fault latency on top of the transfer;
//   - migrate-before-evict: the driver writes device pages back to the
//     host before reusing them, so evictions consume PCIe bandwidth and
//     block the faulting thread (Score instead drops consumed/flushed
//     replicas for free);
//   - migration bandwidth: fault-driven migrations achieve only a fraction
//     of the peak pinned-copy PCIe bandwidth.
//
// The external API mirrors the Score runtime so the benchmark harness can
// drive all approaches identically.
package uvmsim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"score/internal/device"
	"score/internal/fabric"
	"score/internal/metrics"
	"score/internal/payload"
	"score/internal/simclock"
)

// Errors mirroring the core runtime's.
var (
	ErrUnknownCheckpoint = errors.New("uvmsim: unknown checkpoint")
	ErrClosed            = errors.New("uvmsim: client closed")
	ErrDuplicate         = errors.New("uvmsim: checkpoint version already written")
)

// Config parameterizes the UVM model.
type Config struct {
	// Clock drives timing; required.
	Clock simclock.Clock
	// GPU supplies the D2D and PCIe links; required.
	GPU *device.GPU
	// NVMe is the node-shared SSD link; required.
	NVMe *fabric.Link

	// DeviceCacheSize is the managed-memory share of HBM the benchmark
	// grants UVM (the paper uses the same 4 GiB as Score's GPU cache).
	DeviceCacheSize int64
	// HostCacheSize bounds the host-side backing store (32 GiB in the
	// paper); overflow spills to the SSD.
	HostCacheSize int64
	// PageSize is the UVM migration granularity (2 MiB huge pages).
	PageSize int64
	// FaultBatchPages is how many pages one fault-replay cycle covers.
	FaultBatchPages int
	// FaultLatency is the cost of one fault-replay cycle.
	FaultLatency time.Duration
	// MigrationEfficiency scales PCIe bandwidth for fault-driven
	// migrations (measured well below pinned-copy peak; ~0.6).
	MigrationEfficiency float64
	// OversubPenalty further scales migration bandwidth while the
	// device is oversubscribed (eviction pressure): page thrashing
	// collapses UVM throughput by multiples (Allen & Ge [1], Ganguly et
	// al. [10]). Applied when a migration required evictions.
	OversubPenalty float64
	// AsyncHostInit charges the host backing-store registration
	// (HostCacheSize at ~4 GB/s) overlapped with the run; writebacks
	// wait until it completes, mirroring the Score runtime's setting
	// and the paper's observation that slow host-cache initialization
	// limits every cached approach's checkpoint throughput (§5.4.2).
	AsyncHostInit bool
	// DiscardAfterRestore mirrors the Score option: consumed
	// checkpoints need not be flushed to the SSD.
	DiscardAfterRestore bool
}

func (c Config) withDefaults() Config {
	if c.DeviceCacheSize == 0 {
		c.DeviceCacheSize = 4 * fabric.GB
	}
	if c.HostCacheSize == 0 {
		c.HostCacheSize = 32 * fabric.GB
	}
	if c.PageSize == 0 {
		c.PageSize = 2 << 20
	}
	if c.FaultBatchPages == 0 {
		c.FaultBatchPages = 16
	}
	if c.FaultLatency == 0 {
		c.FaultLatency = 40 * time.Microsecond
	}
	if c.MigrationEfficiency == 0 {
		c.MigrationEfficiency = 0.6
	}
	if c.OversubPenalty == 0 {
		c.OversubPenalty = 0.35
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Clock == nil:
		return errors.New("uvmsim: Clock required")
	case c.GPU == nil:
		return errors.New("uvmsim: GPU required")
	case c.NVMe == nil:
		return errors.New("uvmsim: NVMe required")
	case c.DeviceCacheSize <= 0 || c.HostCacheSize <= 0 || c.PageSize <= 0:
		return errors.New("uvmsim: sizes must be positive")
	case c.MigrationEfficiency <= 0 || c.MigrationEfficiency > 1:
		return errors.New("uvmsim: MigrationEfficiency must be in (0,1]")
	case c.OversubPenalty <= 0 || c.OversubPenalty > 1:
		return errors.New("uvmsim: OversubPenalty must be in (0,1]")
	}
	return nil
}

// ckpt tracks one checkpoint's residency across the managed space.
type ckpt struct {
	id   int64
	size int64
	pay  payload.Payload

	deviceBytes int64 // bytes resident on the device
	hostBytes   int64 // bytes resident on the host backing store
	ssd         bool  // a full copy reached the SSD
	consumed    bool
	prefetched  bool // pulled in by cudaMemPrefetchAsync, not yet consumed
	inflight    bool // a migration toward the device is in progress
	lru         time.Duration
	flushQueued bool
}

// Client is one process's UVM-based checkpointing runtime.
type Client struct {
	cfg Config
	clk simclock.Clock
	rec *metrics.Recorder

	mu   sync.Mutex
	cond simclock.Cond

	ckpts     map[int64]*ckpt
	order     []int64 // creation order (for LRU scans)
	devUsed   int64
	hostUsed  int64
	hints     []int64
	hintHead  int
	pfStarted bool
	pfBusy    bool
	closed    bool
	err       error

	flushQ  []int64
	flushOn bool

	restoreIter int
	hostReadyAt time.Duration
	daemons     *simclock.WaitGroup
}

// New creates and starts a UVM client.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, clk: cfg.Clock, rec: metrics.NewRecorder(), ckpts: map[int64]*ckpt{}}
	c.cond = c.clk.NewCond(&c.mu)
	c.daemons = simclock.NewWaitGroup(c.clk)
	if err := cfg.GPU.AllocDevice(cfg.DeviceCacheSize); err != nil {
		return nil, fmt.Errorf("uvmsim: reserving managed device space: %w", err)
	}
	if cfg.AsyncHostInit {
		rate := cfg.GPU.Costs().PinnedHostBytesPerSec
		c.hostReadyAt = c.clk.Now() + time.Duration(float64(cfg.HostCacheSize)/rate*1e9)
	}
	c.daemons.Add(2)
	c.clk.Go(func() { defer c.daemons.Done(); c.flusher() })
	c.clk.Go(func() { defer c.daemons.Done(); c.prefetcher() })
	return c, nil
}

// Close stops background workers.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.daemons.Wait()
}

// Err returns the first asynchronous failure.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Metrics returns the client's recorder.
func (c *Client) Metrics() *metrics.Recorder { return c.rec }

// migrate charges a fault-driven migration of size bytes across PCIe: the
// transfer contends on the real PCIe link but only achieves migration
// efficiency, modeled as transferring the equivalent inflated volume.
// Under oversubscription pressure (pressured), page thrashing collapses
// the effective bandwidth further by OversubPenalty. An injected PCIe
// fault surfaces as the returned error.
func (c *Client) migrate(size int64, pressured bool) error {
	eff := c.cfg.MigrationEfficiency
	if pressured {
		eff *= c.cfg.OversubPenalty
	}
	_, err := c.cfg.GPU.PCIeLink().TryTransfer(int64(float64(size) / eff))
	return err
}

// fail records the first asynchronous failure and wakes waiters.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// waitHostReady blocks until the host backing store is registered.
func (c *Client) waitHostReady() {
	if d := c.hostReadyAt - c.clk.Now(); d > 0 {
		c.clk.Sleep(d)
	}
}

// faultCost charges page-fault replay for touching size bytes.
func (c *Client) faultCost(size int64) {
	pages := (size + c.cfg.PageSize - 1) / c.cfg.PageSize
	batches := (pages + int64(c.cfg.FaultBatchPages) - 1) / int64(c.cfg.FaultBatchPages)
	c.clk.Sleep(time.Duration(batches) * c.cfg.FaultLatency)
}

// reserveDevice frees device space for need bytes by migrating LRU
// checkpoints back to the host (the driver's migrate-before-evict
// behavior) and atomically reserves the space (devUsed += need) once
// available. The victim selection skips prefetched-unconsumed checkpoints
// (the benchmark's thrash-avoidance window) and exclude.
func (c *Client) reserveDevice(need int64, exclude *ckpt) (evicted bool, err error) {
	for {
		c.mu.Lock()
		if c.cfg.DeviceCacheSize-c.devUsed >= need {
			c.devUsed += need
			c.mu.Unlock()
			return evicted, nil
		}
		if c.closed {
			c.mu.Unlock()
			return evicted, ErrClosed
		}
		// LRU victim with device residency.
		var victim *ckpt
		for _, id := range c.order {
			k := c.ckpts[id]
			if k == exclude || k.deviceBytes == 0 || k.inflight {
				continue
			}
			if k.prefetched && !k.consumed {
				continue // window-pinned
			}
			if victim == nil || k.lru < victim.lru {
				victim = k
			}
		}
		if victim == nil {
			// Everything is pinned: wait for consumption.
			c.cond.Wait()
			c.mu.Unlock()
			continue
		}
		evicted = true
		bytes := victim.deviceBytes
		victim.deviceBytes = 0
		c.devUsed -= bytes
		if victim.hostBytes < victim.size {
			c.hostUsed += victim.size - victim.hostBytes
			victim.hostBytes = victim.size
		}
		c.mu.Unlock()

		// Migrate-before-evict: the driver writes the pages back even
		// when a host copy exists — the documented disadvantage vs
		// Score's direct eviction. The writeback itself is a bulk
		// migration (no thrash penalty); the cost is the extra PCIe
		// traffic and the blocking it causes.
		c.waitHostReady()
		if merr := c.migrate(bytes, false); merr != nil {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
			return evicted, merr
		}
		c.spillHostIfNeeded()
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// spillHostIfNeeded keeps the host backing store within bounds by writing
// the oldest host-resident checkpoints to the SSD and dropping them.
func (c *Client) spillHostIfNeeded() {
	for {
		c.mu.Lock()
		if c.hostUsed <= c.cfg.HostCacheSize {
			c.mu.Unlock()
			return
		}
		var victim *ckpt
		for _, id := range c.order {
			k := c.ckpts[id]
			if k.hostBytes == 0 {
				continue
			}
			if k.deviceBytes > 0 && k.prefetched && !k.consumed {
				continue
			}
			victim = k
			break
		}
		if victim == nil {
			c.mu.Unlock()
			return
		}
		toSSD := !victim.ssd && !(victim.consumed && c.cfg.DiscardAfterRestore)
		bytes := victim.hostBytes
		victim.hostBytes = 0
		c.hostUsed -= bytes
		if toSSD {
			victim.ssd = true
		}
		c.mu.Unlock()
		if toSSD {
			if _, err := c.cfg.NVMe.TryTransfer(bytes); err != nil {
				// The spill never landed: un-mark the SSD copy and
				// surface the failure rather than dropping it silently.
				c.mu.Lock()
				victim.ssd = false
				c.mu.Unlock()
				c.fail(err)
				return
			}
		}
	}
}

// Checkpoint writes version id. The writing kernel touches fresh managed
// pages (fault replay), may stall on migrate-before-evict to make room,
// and then copies the snapshot in at device bandwidth. The preferred-
// location hint then queues an asynchronous writeback to the host.
func (c *Client) Checkpoint(id int64, pay payload.Payload) error {
	start := c.clk.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if _, dup := c.ckpts[id]; dup {
		c.mu.Unlock()
		return ErrDuplicate
	}
	k := &ckpt{id: id, size: pay.Size(), pay: pay, lru: c.clk.Now()}
	c.ckpts[id] = k
	c.order = append(c.order, id)
	c.mu.Unlock()

	if _, err := c.reserveDevice(k.size, k); err != nil {
		return err
	}
	c.mu.Lock()
	k.deviceBytes = k.size
	c.mu.Unlock()

	c.faultCost(k.size)       // first touch of managed pages
	c.cfg.GPU.CopyD2D(k.size) // snapshot into the managed buffer

	// cudaMemAdviseSetPreferredLocation(host): async writeback.
	c.mu.Lock()
	k.flushQueued = true
	c.flushQ = append(c.flushQ, id)
	c.cond.Broadcast()
	c.mu.Unlock()

	c.rec.Checkpoint(k.size, c.clk.Now()-start)
	return nil
}

// flusher performs the hint-driven writebacks (device → host) and the
// SSD flush chain.
func (c *Client) flusher() {
	for {
		c.mu.Lock()
		for len(c.flushQ) == 0 {
			if c.closed {
				c.mu.Unlock()
				return
			}
			if c.flushOn {
				// Transitioning to idle: wake WaitFlush once. A
				// broadcast on every pass would ping-pong with other
				// idle waiters and livelock the virtual clock.
				c.flushOn = false
				c.cond.Broadcast()
			}
			c.cond.Wait()
		}
		id := c.flushQ[0]
		c.flushQ = c.flushQ[1:]
		c.flushOn = true
		k := c.ckpts[id]
		skip := k == nil || (k.consumed && c.cfg.DiscardAfterRestore)
		var bytes int64
		if !skip {
			bytes = k.size
			if k.hostBytes == 0 {
				k.hostBytes = k.size
				c.hostUsed += k.size
			}
		}
		c.mu.Unlock()
		if skip {
			continue
		}
		c.waitHostReady()
		// Device → host writeback at migration bandwidth.
		if err := c.migrate(bytes, false); err != nil {
			c.fail(err)
			continue
		}
		c.spillHostIfNeeded()
		// Flush host copy onward to the SSD for durability.
		c.mu.Lock()
		toSSD := !k.ssd && !(k.consumed && c.cfg.DiscardAfterRestore)
		if toSSD {
			k.ssd = true
		}
		c.mu.Unlock()
		if toSSD {
			if _, err := c.cfg.NVMe.TryTransfer(bytes); err != nil {
				c.mu.Lock()
				k.ssd = false
				c.mu.Unlock()
				c.fail(err)
			}
		}
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// PrefetchEnqueue appends a restore-order hint (backing the
// cudaMemPrefetchAsync calls).
func (c *Client) PrefetchEnqueue(id int64) {
	c.mu.Lock()
	c.hints = append(c.hints, id)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// PrefetchStart enables the prefetch thread.
func (c *Client) PrefetchStart() {
	c.mu.Lock()
	c.pfStarted = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// prefetcher issues cudaMemPrefetchAsync for hinted checkpoints, bounded
// by the device window: prefetched-but-unconsumed bytes never exceed the
// device cache (§5.2.2's explicit thrash-avoidance accounting).
func (c *Client) prefetcher() {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return
		}
		if !c.pfStarted {
			c.cond.Wait()
			continue
		}
		var target *ckpt
		idx := -1
		var pinnedBytes int64
		for _, k := range c.ckpts {
			if (k.prefetched || k.inflight) && !k.consumed {
				if k.inflight {
					pinnedBytes += k.size
				} else {
					pinnedBytes += k.deviceBytes
				}
			}
		}
		for i := c.hintHead; i < len(c.hints); i++ {
			k := c.ckpts[c.hints[i]]
			if k == nil || k.consumed || k.inflight {
				continue
			}
			if k.deviceBytes >= k.size {
				continue // already resident
			}
			if pinnedBytes+k.size > c.cfg.DeviceCacheSize {
				break // window full: wait for consumption
			}
			target, idx = k, i
			break
		}
		if target == nil {
			if c.pfBusy {
				c.pfBusy = false
				c.cond.Broadcast()
			}
			c.cond.Wait()
			continue
		}
		_ = idx
		c.pfBusy = true
		target.prefetched = true
		target.inflight = true
		target.lru = c.clk.Now()
		need := target.size - target.deviceBytes
		c.mu.Unlock()

		evicted, err := c.reserveDevice(need, target)
		_ = evicted // cudaMemPrefetchAsync moves pages in bulk: no thrash
		if err == nil {
			err = c.ensureHost(target)
		}
		if err == nil {
			err = c.migrate(need, false) // host → device prefetch migration
		}
		c.mu.Lock()
		if err == nil {
			target.deviceBytes = target.size
		}
		target.inflight = false
		c.cond.Broadcast()
		if err != nil {
			c.mu.Unlock()
			if !errors.Is(err, ErrClosed) {
				c.fail(err)
			}
			return
		}
	}
}

// ensureHost pulls the checkpoint from the SSD into the host backing
// store if needed.
func (c *Client) ensureHost(k *ckpt) error {
	c.mu.Lock()
	prevHost := k.hostBytes
	needSSD := k.hostBytes < k.size && k.deviceBytes < k.size
	if needSSD {
		c.hostUsed += k.size - k.hostBytes
		k.hostBytes = k.size
	}
	c.mu.Unlock()
	if needSSD {
		c.waitHostReady()
		if _, err := c.cfg.NVMe.TryTransfer(k.size); err != nil {
			// The SSD read never completed: undo the host accounting.
			c.mu.Lock()
			c.hostUsed -= k.size - prevHost
			k.hostBytes = prevHost
			c.mu.Unlock()
			return err
		}
		c.spillHostIfNeeded()
	}
	return nil
}

// Restore reads checkpoint id into the application buffer. Device-
// resident pages are read directly; non-resident pages fault and migrate.
// Consumption re-advises the preferred location to host so the driver can
// evict (which it does by migrating).
func (c *Client) Restore(id int64) (payload.Payload, error) {
	start := c.clk.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	k, ok := c.ckpts[id]
	if !ok {
		c.mu.Unlock()
		return nil, ErrUnknownCheckpoint
	}
	iter := c.restoreIter
	c.restoreIter++
	pfDist := c.prefetchDistanceLocked(id)
	// If the prefetcher is migrating this checkpoint in right now, wait
	// for it rather than double-reserving device space.
	for k.inflight {
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		c.cond.Wait()
	}
	missing := k.size - k.deviceBytes
	k.inflight = missing > 0
	k.lru = c.clk.Now()
	c.mu.Unlock()

	if missing > 0 {
		// Fault path: make room (migrate-before-evict), pull from
		// host (via SSD if spilled), pay fault replay.
		evicted, err := c.reserveDevice(missing, k)
		if err == nil {
			err = c.ensureHost(k)
		}
		if err == nil {
			c.faultCost(missing)
			err = c.migrate(missing, evicted)
		}
		if err != nil {
			c.mu.Lock()
			k.inflight = false
			c.cond.Broadcast()
			c.mu.Unlock()
			return nil, err
		}
		c.mu.Lock()
		k.deviceBytes = k.size
		k.inflight = false
		c.cond.Broadcast()
		c.mu.Unlock()
	}
	c.cfg.GPU.CopyD2D(k.size) // managed buffer → application buffer

	c.mu.Lock()
	k.consumed = true
	k.prefetched = false
	if c.hintHead < len(c.hints) && c.hints[c.hintHead] == id {
		c.hintHead++
	}
	c.cond.Broadcast()
	c.mu.Unlock()

	c.rec.Restore(iter, k.size, c.clk.Now()-start, pfDist)
	return k.pay, nil
}

// prefetchDistanceLocked mirrors the §5.4.4 metric for UVM.
func (c *Client) prefetchDistanceLocked(current int64) int {
	dist := 0
	for i := c.hintHead; i < len(c.hints); i++ {
		id := c.hints[i]
		if id == current {
			continue
		}
		k := c.ckpts[id]
		if k == nil || k.deviceBytes < k.size {
			break
		}
		dist++
	}
	return dist
}

// WaitFlush drains the writeback + SSD chain.
func (c *Client) WaitFlush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.flushQ) > 0 || c.flushOn {
		if c.closed {
			return ErrClosed
		}
		c.cond.Wait()
	}
	return c.err
}
