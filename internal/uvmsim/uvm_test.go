package uvmsim

import (
	"errors"
	"testing"
	"time"

	"score/internal/device"
	"score/internal/fabric"
	"score/internal/payload"
	"score/internal/simclock"
)

const MB = 1 << 20

func newUVM(t *testing.T, clk simclock.Clock, mutate func(*Config)) *Client {
	t.Helper()
	cfg := fabric.NodeConfig{
		GPUs: 2, D2DBandwidth: 1000 * MB, PCIeBandwidth: 100 * MB,
		GPUsPerPCIe: 2, NVMeDrives: 1, NVMePerDrive: 25 * MB,
		PFSBandwidth: 10 * MB,
	}
	cluster, err := fabric.NewCluster(clk, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2d, pcie := cluster.Nodes[0].GPULinks(0)
	gpu := device.NewGPU(clk, 0, 64*MB, d2d, pcie, device.DefaultAllocCosts())
	c := Config{
		Clock: clk, GPU: gpu, NVMe: cluster.Nodes[0].NVMe,
		DeviceCacheSize: 4 * MB, HostCacheSize: 16 * MB,
		PageSize: 256 * 1024, FaultLatency: 40 * time.Microsecond,
	}
	if mutate != nil {
		mutate(&c)
	}
	client, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

func TestUVMRoundTrip(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		c := newUVM(t, clk, nil)
		defer c.Close()
		in := payload.NewReal([]byte("uvm snapshot"))
		if err := c.Checkpoint(0, in); err != nil {
			t.Fatal(err)
		}
		out, err := c.Restore(0)
		if err != nil {
			t.Fatal(err)
		}
		if out.Checksum() != in.Checksum() {
			t.Error("payload mismatch")
		}
	})
}

func TestUVMEvictionCascade(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		c := newUVM(t, clk, nil)
		defer c.Close()
		for i := int64(0); i < 12; i++ {
			if err := c.Checkpoint(i, payload.NewVirtual(MB)); err != nil {
				t.Fatalf("checkpoint %d: %v", i, err)
			}
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		for i := int64(11); i >= 0; i-- {
			if _, err := c.Restore(i); err != nil {
				t.Fatalf("restore %d: %v", i, err)
			}
		}
	})
}

func TestUVMFaultReplayCostCharged(t *testing.T) {
	// Restoring a non-resident checkpoint must cost at least the fault
	// batches plus the migration, strictly more than a resident read.
	clk := simclock.NewVirtual()
	clk.Run(func() {
		c := newUVM(t, clk, nil)
		defer c.Close()
		for i := int64(0); i < 8; i++ { // 8MB through a 4MB device cache
			if err := c.Checkpoint(i, payload.NewVirtual(MB)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		// Checkpoint 0 was evicted; 7 should still be device-resident.
		start := clk.Now()
		if _, err := c.Restore(7); err != nil {
			t.Fatal(err)
		}
		residentTime := clk.Now() - start
		start = clk.Now()
		if _, err := c.Restore(0); err != nil {
			t.Fatal(err)
		}
		faultTime := clk.Now() - start
		if faultTime <= residentTime {
			t.Errorf("faulting restore (%v) not slower than resident restore (%v)", faultTime, residentTime)
		}
		// 1MB at migration bandwidth (60MB/s effective) ≈ 16.7ms min.
		if faultTime < 10*time.Millisecond {
			t.Errorf("faulting restore took %v; expected >= ~16ms of migration", faultTime)
		}
	})
}

func TestUVMPrefetchingHelpsReverseRestore(t *testing.T) {
	const n = 12
	runShot := func(hints bool) time.Duration {
		var blocked time.Duration
		clk := simclock.NewVirtual()
		clk.Run(func() {
			c := newUVM(t, clk, nil)
			defer c.Close()
			if hints {
				for i := n - 1; i >= 0; i-- {
					c.PrefetchEnqueue(int64(i))
				}
			}
			for i := int64(0); i < n; i++ {
				if err := c.Checkpoint(i, payload.NewVirtual(MB)); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.WaitFlush(); err != nil {
				t.Fatal(err)
			}
			c.PrefetchStart()
			for i := int64(n - 1); i >= 0; i-- {
				start := clk.Now()
				if _, err := c.Restore(i); err != nil {
					t.Fatal(err)
				}
				blocked += clk.Now() - start
				clk.Sleep(20 * time.Millisecond)
			}
		})
		return blocked
	}
	withHints := runShot(true)
	withoutHints := runShot(false)
	if withHints >= withoutHints {
		t.Errorf("hinted UVM blocked %v, unhinted %v: prefetch hints should help", withHints, withoutHints)
	}
}

func TestUVMAPIErrors(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		c := newUVM(t, clk, nil)
		if err := c.Checkpoint(0, payload.NewVirtual(MB)); err != nil {
			t.Fatal(err)
		}
		if err := c.Checkpoint(0, payload.NewVirtual(MB)); !errors.Is(err, ErrDuplicate) {
			t.Errorf("duplicate: %v", err)
		}
		if _, err := c.Restore(9); !errors.Is(err, ErrUnknownCheckpoint) {
			t.Errorf("unknown: %v", err)
		}
		c.Close()
		if err := c.Checkpoint(1, payload.NewVirtual(MB)); !errors.Is(err, ErrClosed) {
			t.Errorf("after close: %v", err)
		}
		c.Close()
	})
}

func TestUVMConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	clk := simclock.NewVirtual()
	cl, _ := fabric.NewCluster(clk, 1, fabric.DGXA100())
	d2d, pcie := cl.Nodes[0].GPULinks(0)
	gpu := device.NewGPU(clk, 0, 40*fabric.GB, d2d, pcie, device.DefaultAllocCosts())
	if _, err := New(Config{Clock: clk, GPU: gpu, NVMe: cl.Nodes[0].NVMe,
		MigrationEfficiency: 2}); err == nil {
		t.Error("MigrationEfficiency > 1 accepted")
	}
}
