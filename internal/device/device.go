// Package device models the GPU and host-memory resources a Score client
// uses: HBM capacity accounting, timed memory allocation (the paper's
// §4.1.4 motivates pre-allocating and pinning cache buffers because
// on-demand allocation can cost more than the transfer itself), copy
// engines over the fabric links, and compute-kernel emulation.
package device

import (
	"fmt"
	"sync"
	"time"

	"score/internal/fabric"
	"score/internal/simclock"
)

// AllocCosts models memory-allocation throughput on each tier (paper
// §4.1.4: "memory allocation speed [on A100 HBM] ... about 1 TB/s ...
// pinned memory can be allocated on the host cache at about 4 GB/s").
type AllocCosts struct {
	// DeviceBytesPerSec is the HBM allocation rate.
	DeviceBytesPerSec float64
	// PinnedHostBytesPerSec is the pinned host allocation+registration
	// rate.
	PinnedHostBytesPerSec float64
}

// DefaultAllocCosts returns the paper's measured A100 allocation rates.
func DefaultAllocCosts() AllocCosts {
	return AllocCosts{
		DeviceBytesPerSec:     1000 * fabric.GB,
		PinnedHostBytesPerSec: 4 * fabric.GB,
	}
}

// GPU is one simulated accelerator: a bounded HBM pool plus the links that
// connect it to its own memory (D2D), to host memory (PCIe), and through
// the host to storage.
type GPU struct {
	clk   simclock.Clock
	id    int
	hbm   int64 // total HBM bytes
	costs AllocCosts

	d2d  *fabric.Link
	pcie *fabric.Link

	mu        sync.Mutex
	used      int64
	allocIcpt fabric.TransferInterceptor
}

// NewGPU creates GPU id with hbmCapacity bytes of device memory attached
// to the given fabric links.
func NewGPU(clk simclock.Clock, id int, hbmCapacity int64, d2d, pcie *fabric.Link, costs AllocCosts) *GPU {
	if hbmCapacity <= 0 {
		panic(fmt.Sprintf("device: GPU %d: HBM capacity must be positive", id))
	}
	if costs.DeviceBytesPerSec <= 0 || costs.PinnedHostBytesPerSec <= 0 {
		panic("device: allocation rates must be positive")
	}
	return &GPU{clk: clk, id: id, hbm: hbmCapacity, costs: costs, d2d: d2d, pcie: pcie}
}

// ID returns the GPU's index on its node.
func (g *GPU) ID() int { return g.id }

// Costs returns the GPU's allocation-cost model.
func (g *GPU) Costs() AllocCosts { return g.costs }

// ChargeDeviceAlloc charges the simulated time of allocating size bytes
// of device memory without reserving capacity (used by the on-demand
// allocation ablation, where the region is logically transient).
func (g *GPU) ChargeDeviceAlloc(size int64) {
	g.clk.Sleep(allocDuration(size, g.costs.DeviceBytesPerSec))
}

// HBMCapacity returns the total device memory in bytes.
func (g *GPU) HBMCapacity() int64 { return g.hbm }

// HBMUsed returns the currently allocated device memory in bytes.
func (g *GPU) HBMUsed() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// AllocDevice reserves size bytes of HBM, charging the simulated
// allocation time. It fails if the device is out of memory.
func (g *GPU) AllocDevice(size int64) error {
	if size < 0 {
		return fmt.Errorf("device: GPU %d: negative allocation %d", g.id, size)
	}
	g.mu.Lock()
	if g.used+size > g.hbm {
		defer g.mu.Unlock()
		return fmt.Errorf("device: GPU %d: out of memory: %d used + %d requested > %d HBM",
			g.id, g.used, size, g.hbm)
	}
	g.used += size
	g.mu.Unlock()
	g.clk.Sleep(allocDuration(size, g.costs.DeviceBytesPerSec))
	return nil
}

// FreeDevice releases size bytes of HBM.
func (g *GPU) FreeDevice(size int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.used -= size
	if g.used < 0 {
		panic(fmt.Sprintf("device: GPU %d: negative HBM usage", g.id))
	}
}

// SetAllocInterceptor installs a fault-injection interceptor on pinned
// host allocation. Allocation pressure slows registration (Delay and
// BandwidthScale) but never fails it — a FaultDecision.Err is ignored.
func (g *GPU) SetAllocInterceptor(f fabric.TransferInterceptor) {
	g.mu.Lock()
	g.allocIcpt = f
	g.mu.Unlock()
}

// AllocPinnedHost charges the simulated time to allocate and register size
// bytes of pinned host memory. (Host capacity bookkeeping is the
// runtime's responsibility; this models only the registration cost that
// makes pre-allocation worthwhile.)
func (g *GPU) AllocPinnedHost(size int64) {
	if size <= 0 {
		return
	}
	g.mu.Lock()
	icpt := g.allocIcpt
	g.mu.Unlock()
	rate := g.costs.PinnedHostBytesPerSec
	if icpt != nil {
		fd := icpt("host-alloc", size)
		if fd.Delay > 0 {
			g.clk.Sleep(fd.Delay)
		}
		if fd.BandwidthScale > 0 && fd.BandwidthScale < 1 {
			rate *= fd.BandwidthScale
		}
	}
	g.clk.Sleep(allocDuration(size, rate))
}

// CopyD2D moves size bytes within device memory (e.g. application buffer
// → GPU cache) and returns the simulated duration.
func (g *GPU) CopyD2D(size int64) time.Duration { return g.d2d.Transfer(size) }

// CopyD2H moves size bytes from device to host over PCIe.
func (g *GPU) CopyD2H(size int64) time.Duration { return g.pcie.Transfer(size) }

// CopyH2D moves size bytes from host to device over PCIe.
func (g *GPU) CopyH2D(size int64) time.Duration { return g.pcie.Transfer(size) }

// TryCopyD2H is CopyD2H with injected PCIe faults surfaced.
func (g *GPU) TryCopyD2H(size int64) (time.Duration, error) { return g.pcie.TryTransfer(size) }

// TryCopyH2D is CopyH2D with injected PCIe faults surfaced.
func (g *GPU) TryCopyH2D(size int64) (time.Duration, error) { return g.pcie.TryTransfer(size) }

// D2DLink returns the device's D2D link (used for eviction-time
// estimates).
func (g *GPU) D2DLink() *fabric.Link { return g.d2d }

// PCIeLink returns the device's PCIe link.
func (g *GPU) PCIeLink() *fabric.Link { return g.pcie }

// Compute emulates a kernel of the given duration (the paper's benchmark
// "runs trivial iterations, by sleeping to simulate computations").
func (g *GPU) Compute(d time.Duration) { g.clk.Sleep(d) }

func allocDuration(size int64, rate float64) time.Duration {
	if size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / rate * 1e9)
}
