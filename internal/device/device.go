// Package device models the GPU and host-memory resources a Score client
// uses: HBM capacity accounting, timed memory allocation (the paper's
// §4.1.4 motivates pre-allocating and pinning cache buffers because
// on-demand allocation can cost more than the transfer itself), copy
// engines over the fabric links, and compute-kernel emulation.
package device

import (
	"fmt"
	"sync"
	"time"

	"score/internal/fabric"
	"score/internal/simclock"
)

// AllocCosts models memory-allocation throughput on each tier (paper
// §4.1.4: "memory allocation speed [on A100 HBM] ... about 1 TB/s ...
// pinned memory can be allocated on the host cache at about 4 GB/s").
type AllocCosts struct {
	// DeviceBytesPerSec is the HBM allocation rate.
	DeviceBytesPerSec float64
	// PinnedHostBytesPerSec is the pinned host allocation+registration
	// rate.
	PinnedHostBytesPerSec float64
}

// DefaultAllocCosts returns the paper's measured A100 allocation rates.
func DefaultAllocCosts() AllocCosts {
	return AllocCosts{
		DeviceBytesPerSec:     1000 * fabric.GB,
		PinnedHostBytesPerSec: 4 * fabric.GB,
	}
}

// DefaultCopyEngines is the number of DMA copy engines a GPU exposes to
// the runtime's streams. An A100 has more physical engines, but the
// paper's runtime drives one stream per direction pair, so two
// concurrent chunked streams per GPU is the measured shape (§4.3).
const DefaultCopyEngines = 2

// GPU is one simulated accelerator: a bounded HBM pool plus the links that
// connect it to its own memory (D2D), to host memory (PCIe), and through
// the host to storage.
type GPU struct {
	clk   simclock.Clock
	id    int
	hbm   int64 // total HBM bytes
	costs AllocCosts

	d2d  *fabric.Link
	pcie *fabric.Link

	mu        sync.Mutex
	used      int64
	allocIcpt fabric.TransferInterceptor

	// Copy-engine accounting: chunked streams (TryStreamD2H/TryStreamH2D)
	// each hold one engine end to end, so at most engines streams make
	// DMA progress concurrently; excess streams queue on engCond.
	engCond simclock.Cond
	engines int
	engBusy int
}

// NewGPU creates GPU id with hbmCapacity bytes of device memory attached
// to the given fabric links.
func NewGPU(clk simclock.Clock, id int, hbmCapacity int64, d2d, pcie *fabric.Link, costs AllocCosts) *GPU {
	if hbmCapacity <= 0 {
		panic(fmt.Sprintf("device: GPU %d: HBM capacity must be positive", id))
	}
	if costs.DeviceBytesPerSec <= 0 || costs.PinnedHostBytesPerSec <= 0 {
		panic("device: allocation rates must be positive")
	}
	g := &GPU{clk: clk, id: id, hbm: hbmCapacity, costs: costs, d2d: d2d, pcie: pcie,
		engines: DefaultCopyEngines}
	g.engCond = clk.NewCond(&g.mu)
	return g
}

// SetCopyEngines overrides the number of copy engines (>= 1) available
// to chunked streams. Call before starting work; it does not preempt
// streams already holding an engine.
func (g *GPU) SetCopyEngines(n int) {
	if n < 1 {
		panic(fmt.Sprintf("device: GPU %d: copy engines must be >= 1, got %d", g.id, n))
	}
	g.mu.Lock()
	g.engines = n
	g.engCond.Broadcast()
	g.mu.Unlock()
}

// CopyEngines returns the number of copy engines available to chunked
// streams.
func (g *GPU) CopyEngines() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.engines
}

// EnginesBusy returns the number of copy engines currently held by
// streams — the observability sampler's occupancy probe.
func (g *GPU) EnginesBusy() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.engBusy
}

func (g *GPU) acquireEngine() {
	g.mu.Lock()
	for g.engBusy >= g.engines {
		g.engCond.Wait()
	}
	g.engBusy++
	g.mu.Unlock()
}

func (g *GPU) releaseEngine() {
	g.mu.Lock()
	g.engBusy--
	if g.engBusy < 0 {
		panic(fmt.Sprintf("device: GPU %d: negative copy-engine usage", g.id))
	}
	g.engCond.Broadcast()
	g.mu.Unlock()
}

// ID returns the GPU's index on its node.
func (g *GPU) ID() int { return g.id }

// Costs returns the GPU's allocation-cost model.
func (g *GPU) Costs() AllocCosts { return g.costs }

// ChargeDeviceAlloc charges the simulated time of allocating size bytes
// of device memory without reserving capacity (used by the on-demand
// allocation ablation, where the region is logically transient).
func (g *GPU) ChargeDeviceAlloc(size int64) {
	g.clk.Sleep(allocDuration(size, g.costs.DeviceBytesPerSec))
}

// HBMCapacity returns the total device memory in bytes.
func (g *GPU) HBMCapacity() int64 { return g.hbm }

// HBMUsed returns the currently allocated device memory in bytes.
func (g *GPU) HBMUsed() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// AllocDevice reserves size bytes of HBM, charging the simulated
// allocation time. It fails if the device is out of memory.
func (g *GPU) AllocDevice(size int64) error {
	if size < 0 {
		return fmt.Errorf("device: GPU %d: negative allocation %d", g.id, size)
	}
	g.mu.Lock()
	if g.used+size > g.hbm {
		defer g.mu.Unlock()
		return fmt.Errorf("device: GPU %d: out of memory: %d used + %d requested > %d HBM",
			g.id, g.used, size, g.hbm)
	}
	g.used += size
	g.mu.Unlock()
	g.clk.Sleep(allocDuration(size, g.costs.DeviceBytesPerSec))
	return nil
}

// FreeDevice releases size bytes of HBM.
func (g *GPU) FreeDevice(size int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.used -= size
	if g.used < 0 {
		panic(fmt.Sprintf("device: GPU %d: negative HBM usage", g.id))
	}
}

// SetAllocInterceptor installs a fault-injection interceptor on pinned
// host allocation. Allocation pressure slows registration (Delay and
// BandwidthScale) but never fails it — a FaultDecision.Err is ignored.
func (g *GPU) SetAllocInterceptor(f fabric.TransferInterceptor) {
	g.mu.Lock()
	g.allocIcpt = f
	g.mu.Unlock()
}

// AllocPinnedHost charges the simulated time to allocate and register size
// bytes of pinned host memory. (Host capacity bookkeeping is the
// runtime's responsibility; this models only the registration cost that
// makes pre-allocation worthwhile.)
func (g *GPU) AllocPinnedHost(size int64) {
	if size <= 0 {
		return
	}
	g.mu.Lock()
	icpt := g.allocIcpt
	g.mu.Unlock()
	rate := g.costs.PinnedHostBytesPerSec
	if icpt != nil {
		fd := icpt("host-alloc", size)
		if fd.Delay > 0 {
			g.clk.Sleep(fd.Delay)
		}
		if fd.BandwidthScale > 0 && fd.BandwidthScale < 1 {
			rate *= fd.BandwidthScale
		}
	}
	g.clk.Sleep(allocDuration(size, rate))
}

// CopyD2D moves size bytes within device memory (e.g. application buffer
// → GPU cache) and returns the simulated duration. Intra-device copies
// have no fault interceptor, so no error can be lost here.
func (g *GPU) CopyD2D(size int64) time.Duration {
	d, _ := g.d2d.TryTransfer(size)
	return d
}

// CopyD2H moves size bytes from device to host over PCIe.
//
// Deprecated: use TryCopyD2H so injected PCIe faults surface.
func (g *GPU) CopyD2H(size int64) time.Duration {
	d, _ := g.TryCopyD2H(size)
	return d
}

// CopyH2D moves size bytes from host to device over PCIe.
//
// Deprecated: use TryCopyH2D so injected PCIe faults surface.
func (g *GPU) CopyH2D(size int64) time.Duration {
	d, _ := g.TryCopyH2D(size)
	return d
}

// TryCopyD2H is CopyD2H with injected PCIe faults surfaced.
func (g *GPU) TryCopyD2H(size int64) (time.Duration, error) { return g.pcie.TryTransfer(size) }

// TryCopyH2D is CopyH2D with injected PCIe faults surfaced.
func (g *GPU) TryCopyH2D(size int64) (time.Duration, error) { return g.pcie.TryTransfer(size) }

// TryStreamD2H moves size bytes device→host over PCIe and onward across
// the extra hops (e.g. the node NVMe for a GPU→SSD flush) as one chunked
// pipelined stream, holding one of the GPU's copy engines for the
// stream's duration. With chunkSize <= 0 the transfer is monolithic
// store-and-forward, timed identically to TryCopyD2H plus sequential
// hops. The first hop failure aborts the stream and is returned.
func (g *GPU) TryStreamD2H(onward fabric.Path, size, chunkSize int64) (fabric.PipelineStats, error) {
	g.acquireEngine()
	defer g.releaseEngine()
	path := make(fabric.Path, 0, len(onward)+1)
	path = append(path, g.pcie)
	path = append(path, onward...)
	return path.TryPipelined(size, chunkSize)
}

// TryStreamH2D moves size bytes across the inward hops (e.g. the node
// NVMe for an SSD→GPU promotion) and then host→device over PCIe as one
// chunked pipelined stream, holding one of the GPU's copy engines for
// the stream's duration.
func (g *GPU) TryStreamH2D(inward fabric.Path, size, chunkSize int64) (fabric.PipelineStats, error) {
	g.acquireEngine()
	defer g.releaseEngine()
	path := make(fabric.Path, 0, len(inward)+1)
	path = append(path, inward...)
	path = append(path, g.pcie)
	return path.TryPipelined(size, chunkSize)
}

// D2DLink returns the device's D2D link (used for eviction-time
// estimates).
func (g *GPU) D2DLink() *fabric.Link { return g.d2d }

// PCIeLink returns the device's PCIe link.
func (g *GPU) PCIeLink() *fabric.Link { return g.pcie }

// Compute emulates a kernel of the given duration (the paper's benchmark
// "runs trivial iterations, by sleeping to simulate computations").
func (g *GPU) Compute(d time.Duration) { g.clk.Sleep(d) }

func allocDuration(size int64, rate float64) time.Duration {
	if size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / rate * 1e9)
}
