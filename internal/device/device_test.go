package device

import (
	"testing"
	"time"

	"score/internal/fabric"
	"score/internal/simclock"
)

func newTestGPU(clk simclock.Clock) *GPU {
	d2d := fabric.NewLink(clk, "d2d", 1000*fabric.GB, 0)
	pcie := fabric.NewLink(clk, "pcie", 25*fabric.GB, 0)
	return NewGPU(clk, 0, 40*fabric.GB, d2d, pcie, DefaultAllocCosts())
}

func TestAllocAccounting(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		g := newTestGPU(clk)
		if err := g.AllocDevice(10 * fabric.GB); err != nil {
			t.Fatal(err)
		}
		if got := g.HBMUsed(); got != 10*fabric.GB {
			t.Errorf("used = %d, want 10GB", got)
		}
		if err := g.AllocDevice(31 * fabric.GB); err == nil {
			t.Error("over-allocation should fail")
		}
		g.FreeDevice(10 * fabric.GB)
		if got := g.HBMUsed(); got != 0 {
			t.Errorf("used after free = %d, want 0", got)
		}
	})
}

func TestDeviceAllocationCost(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		g := newTestGPU(clk)
		start := clk.Now()
		if err := g.AllocDevice(10 * fabric.GB); err != nil {
			t.Fatal(err)
		}
		// 10GB at 1TB/s = 10ms.
		if got, want := clk.Now()-start, 10*time.Millisecond; absDur(got-want) > time.Millisecond {
			t.Errorf("device alloc took %v, want ~%v", got, want)
		}
	})
}

func TestPinnedHostAllocationIsExpensive(t *testing.T) {
	// §4.1.4: pinned host allocation at ~4 GB/s is slower than the
	// 25 GB/s transfer it enables — the reason Score pre-allocates.
	clk := simclock.NewVirtual()
	clk.Run(func() {
		g := newTestGPU(clk)
		start := clk.Now()
		g.AllocPinnedHost(32 * fabric.GB)
		allocTime := clk.Now() - start
		if want := 8 * time.Second; absDur(allocTime-want) > 100*time.Millisecond {
			t.Errorf("pinned alloc of 32GB took %v, want ~%v", allocTime, want)
		}
		start = clk.Now()
		g.CopyD2H(32 * fabric.GB)
		xferTime := clk.Now() - start
		if xferTime >= allocTime {
			t.Errorf("transfer (%v) should be faster than pinned allocation (%v)", xferTime, allocTime)
		}
	})
}

func TestCopiesUseRespectiveLinks(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		g := newTestGPU(clk)
		if d := g.CopyD2D(fabric.GB); absDur(d-time.Millisecond) > 100*time.Microsecond {
			t.Errorf("D2D 1GB took %v, want ~1ms at 1TB/s", d)
		}
		if d := g.CopyD2H(25 * fabric.GB); absDur(d-time.Second) > 10*time.Millisecond {
			t.Errorf("D2H 25GB took %v, want ~1s at 25GB/s", d)
		}
		if d := g.CopyH2D(25 * fabric.GB); absDur(d-time.Second) > 10*time.Millisecond {
			t.Errorf("H2D 25GB took %v, want ~1s at 25GB/s", d)
		}
	})
}

func TestComputeAdvancesClock(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		g := newTestGPU(clk)
		start := clk.Now()
		g.Compute(10 * time.Millisecond)
		if got := clk.Now() - start; got != 10*time.Millisecond {
			t.Errorf("Compute advanced %v, want 10ms", got)
		}
	})
}

func TestNegativeFreePanics(t *testing.T) {
	clk := simclock.NewVirtual()
	g := newTestGPU(clk)
	defer func() {
		if recover() == nil {
			t.Error("freeing more than allocated did not panic")
		}
	}()
	g.FreeDevice(1)
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// TestCopyEngineCap: three concurrent chunked streams on a GPU with two
// copy engines must never put more than two streams on the PCIe link at
// once — the third waits for an engine.
func TestCopyEngineCap(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		g := newTestGPU(clk)
		if g.CopyEngines() != DefaultCopyEngines {
			t.Fatalf("CopyEngines = %d, want default %d", g.CopyEngines(), DefaultCopyEngines)
		}
		ssd := fabric.NewLink(clk, "nvme", 16*fabric.GB, 0)
		wg := simclock.NewWaitGroup(clk)
		for i := 0; i < 3; i++ {
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				if _, err := g.TryStreamD2H(fabric.Path{ssd}, 2*fabric.GB, fabric.GB/8); err != nil {
					t.Errorf("TryStreamD2H: %v", err)
				}
			})
		}
		wg.Wait()
		if _, _, peak := g.PCIeLink().Stats(); peak > DefaultCopyEngines {
			t.Errorf("PCIe peak concurrency = %d, want <= %d (copy-engine cap)", peak, DefaultCopyEngines)
		}
		bytes, _, _ := ssd.Stats()
		if want := int64(3 * 2 * fabric.GB); bytes != want {
			t.Errorf("NVMe carried %d bytes, want %d", bytes, want)
		}
	})
}

// TestSetCopyEngines: raising the engine count lets more streams run
// concurrently; the setter rejects non-positive values.
func TestSetCopyEngines(t *testing.T) {
	clk := simclock.NewVirtual()
	clk.Run(func() {
		g := newTestGPU(clk)
		g.SetCopyEngines(4)
		if g.CopyEngines() != 4 {
			t.Fatalf("CopyEngines = %d, want 4", g.CopyEngines())
		}
		wg := simclock.NewWaitGroup(clk)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				g.TryStreamD2H(nil, fabric.GB, fabric.GB/4)
			})
		}
		wg.Wait()
		if _, _, peak := g.PCIeLink().Stats(); peak != 4 {
			t.Errorf("PCIe peak concurrency = %d, want 4", peak)
		}
		defer func() {
			if recover() == nil {
				t.Error("SetCopyEngines(0) did not panic")
			}
		}()
		g.SetCopyEngines(0)
	})
}
