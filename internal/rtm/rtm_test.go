package rtm

import (
	"testing"
	"testing/quick"
)

func TestOrderSequences(t *testing.T) {
	seq := Sequential.Sequence(4, 1)
	rev := Reverse.Sequence(4, 1)
	for i := 0; i < 4; i++ {
		if seq[i] != i {
			t.Errorf("sequential[%d] = %d", i, seq[i])
		}
		if rev[i] != 3-i {
			t.Errorf("reverse[%d] = %d", i, rev[i])
		}
	}
}

func TestIrregularOrderIsPermutationAndDeterministic(t *testing.T) {
	a := Irregular.Sequence(100, 7)
	b := Irregular.Sequence(100, 7)
	c := Irregular.Sequence(100, 8)
	seen := make(map[int]bool)
	same := true
	diff := false
	for i := range a {
		if seen[a[i]] {
			t.Fatalf("duplicate index %d in irregular order", a[i])
		}
		seen[a[i]] = true
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if len(seen) != 100 {
		t.Errorf("irregular order covers %d indices, want 100", len(seen))
	}
	if !same {
		t.Error("same seed produced different irregular orders")
	}
	if !diff {
		t.Error("different seeds produced identical irregular orders")
	}
}

func TestOrderStrings(t *testing.T) {
	if Sequential.String() != "sequential" || Reverse.String() != "reverse" ||
		Irregular.String() != "irregular" {
		t.Error("unexpected order names")
	}
	if Order(9).String() != "Order(9)" {
		t.Error("out-of-range order should format numerically")
	}
}

func TestGenerateShotMatchesPublishedShape(t *testing.T) {
	cfg := DefaultTraceConfig()
	for rank := 0; rank < 32; rank++ {
		shot, err := GenerateShot(cfg, rank)
		if err != nil {
			t.Fatal(err)
		}
		if len(shot.Sizes) != 384 {
			t.Fatalf("rank %d: %d snapshots, want 384", rank, len(shot.Sizes))
		}
		total := shot.Total()
		if total < cfg.MinAggregate*95/100 || total > cfg.MaxAggregate*105/100 {
			t.Errorf("rank %d: aggregate %d outside 38–50 GB (±5%%)", rank, total)
		}
		// Early snapshots smaller than late ones (Fig. 4 / §5.4.2:
		// "smaller-sized checkpoints at the beginning of the shot").
		var early, late int64
		for i := 0; i < 32; i++ {
			early += shot.Sizes[i]
			late += shot.Sizes[384-32+i]
		}
		if early >= late {
			t.Errorf("rank %d: early 32 snapshots (%d) not smaller than late (%d)", rank, early, late)
		}
	}
}

func TestGenerateShotDeterministic(t *testing.T) {
	cfg := DefaultTraceConfig()
	a, _ := GenerateShot(cfg, 3)
	b, _ := GenerateShot(cfg, 3)
	c, _ := GenerateShot(cfg, 4)
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			t.Fatal("same rank+seed produced different traces")
		}
	}
	if a.Total() == c.Total() {
		t.Error("different ranks produced identical aggregates (no cross-rank variation)")
	}
}

func TestUniformShot(t *testing.T) {
	s := UniformShot(0, 384, 128<<20)
	if got, want := s.Total(), int64(384*(128<<20)); got != want {
		t.Errorf("uniform total = %d, want %d (48 GB)", got, want)
	}
	if s.MaxSize() != 128<<20 {
		t.Errorf("uniform max = %d", s.MaxSize())
	}
}

func TestStatsMinAvgMaxOrdering(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Snapshots = 64
	var shots []Shot
	for rank := 0; rank < 8; rank++ {
		s, err := GenerateShot(cfg, rank)
		if err != nil {
			t.Fatal(err)
		}
		shots = append(shots, s)
	}
	stats, err := Stats(shots)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 64 {
		t.Fatalf("stats rows = %d, want 64", len(stats))
	}
	for _, st := range stats {
		if !(st.Min <= st.Avg && st.Avg <= st.Max) {
			t.Errorf("snapshot %d: min %d avg %d max %d not ordered", st.Snapshot, st.Min, st.Avg, st.Max)
		}
	}
}

func TestStatsErrors(t *testing.T) {
	if _, err := Stats(nil); err == nil {
		t.Error("Stats(nil) should fail")
	}
	if _, err := Stats([]Shot{{Sizes: []int64{1}}, {Sizes: []int64{1, 2}}}); err == nil {
		t.Error("ragged shots should fail")
	}
}

func TestTraceConfigValidation(t *testing.T) {
	bad := []TraceConfig{
		{Snapshots: 0, MeanSize: 1, MinAggregate: 1, MaxAggregate: 2},
		{Snapshots: 1, MeanSize: 0, MinAggregate: 1, MaxAggregate: 2},
		{Snapshots: 1, MeanSize: 1, MinAggregate: 2, MaxAggregate: 1},
		{Snapshots: 1, MeanSize: 1, MinAggregate: 1, MaxAggregate: 2, Jitter: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
		if _, err := GenerateShot(cfg, 0); err == nil {
			t.Errorf("GenerateShot with config %d should fail", i)
		}
	}
}

func TestOrderSequenceProperty(t *testing.T) {
	// Property: every order yields a permutation of [0, n).
	f := func(n uint8, seed int64) bool {
		size := int(n%64) + 1
		for _, o := range []Order{Sequential, Reverse, Irregular} {
			seq := o.Sequence(size, seed)
			if len(seq) != size {
				return false
			}
			seen := make([]bool, size)
			for _, v := range seq {
				if v < 0 || v >= size || seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
