// Package rtm models the paper's evaluation workload: Reverse Time
// Migration (§5.3.1), an adjoint seismic-imaging computation whose forward
// pass writes one compressed wavefield checkpoint per iteration and whose
// backward pass reads them in a predefined order.
//
// The paper benchmarks against traces from 1600 production shots; this
// package generates seeded synthetic traces matching the published shape
// (§5.3.3, Fig. 4): 384 snapshots per shot, aggregate 38–50 GB per GPU,
// ~30× average compression, sizes small at the beginning of the shot and
// growing as the wavefield expands, with cross-rank variation within an
// iteration. The uniform variant uses 128 MB × 384 = 48 GB, the 50th
// percentile of the trace distribution.
package rtm

import (
	"fmt"
	"math"
	"math/rand"
)

// Order is a restore-order pattern (§5.3.2).
type Order int

const (
	// Sequential: the backward pass consumes checkpoints in write order.
	Sequential Order = iota
	// Reverse: the backward pass consumes checkpoints in reverse write
	// order (the natural adjoint pattern).
	Reverse
	// Irregular: a random but predetermined order.
	Irregular
)

// String names the order.
func (o Order) String() string {
	switch o {
	case Sequential:
		return "sequential"
	case Reverse:
		return "reverse"
	case Irregular:
		return "irregular"
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

// Sequence returns the restore order for n checkpoints. Irregular orders
// are deterministic in seed.
func (o Order) Sequence(n int, seed int64) []int {
	idx := make([]int, n)
	switch o {
	case Sequential:
		for i := range idx {
			idx[i] = i
		}
	case Reverse:
		for i := range idx {
			idx[i] = n - 1 - i
		}
	case Irregular:
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		copy(idx, perm)
	default:
		panic(fmt.Sprintf("rtm: unknown order %d", int(o)))
	}
	return idx
}

// TraceConfig parameterizes synthetic shot generation.
type TraceConfig struct {
	// Snapshots per shot (paper: 384).
	Snapshots int
	// MeanSize is the long-run average checkpoint size in bytes
	// (paper: ~125 MB, with 128 MB as the uniform-variant median).
	MeanSize int64
	// MinAggregate and MaxAggregate bound each rank's total shot size
	// (paper: 38–50 GB). The generated sizes are scaled to a target
	// drawn uniformly from this range per rank.
	MinAggregate, MaxAggregate int64
	// Seed makes generation deterministic; rank perturbs it.
	Seed int64
	// Jitter is the per-snapshot lognormal sigma (size variation from
	// compression, ~0.25 is realistic).
	Jitter float64
}

// DefaultTraceConfig returns the paper's published distribution shape.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Snapshots:    384,
		MeanSize:     128 << 20,
		MinAggregate: 38 << 30,
		MaxAggregate: 50 << 30,
		Seed:         2023,
		Jitter:       0.25,
	}
}

// Validate reports configuration problems.
func (c TraceConfig) Validate() error {
	switch {
	case c.Snapshots < 1:
		return fmt.Errorf("rtm: need at least one snapshot, got %d", c.Snapshots)
	case c.MeanSize <= 0:
		return fmt.Errorf("rtm: MeanSize must be positive")
	case c.MinAggregate <= 0 || c.MaxAggregate < c.MinAggregate:
		return fmt.Errorf("rtm: invalid aggregate bounds [%d, %d]", c.MinAggregate, c.MaxAggregate)
	case c.Jitter < 0:
		return fmt.Errorf("rtm: negative jitter")
	}
	return nil
}

// Shot is one rank's trace: the per-iteration checkpoint sizes of one
// forward pass.
type Shot struct {
	Rank  int
	Sizes []int64
}

// Total returns the aggregate checkpoint bytes of the shot.
func (s Shot) Total() int64 {
	var t int64
	for _, v := range s.Sizes {
		t += v
	}
	return t
}

// MaxSize returns the largest checkpoint in the shot.
func (s Shot) MaxSize() int64 {
	var m int64
	for _, v := range s.Sizes {
		if v > m {
			m = v
		}
	}
	return m
}

// ramp models the wavefield growth over the shot: early snapshots are
// small (the wavefront has touched little of the domain, so compressed
// sizes are tiny), saturating as the field fills the domain. x in [0,1].
func ramp(x float64) float64 {
	// Smoothstep from 0.25 to 1.25 over the first 40% of the shot.
	t := x / 0.4
	if t > 1 {
		t = 1
	}
	s := t * t * (3 - 2*t)
	return 0.25 + s
}

// GenerateShot produces rank's synthetic variable-size trace.
func GenerateShot(cfg TraceConfig, rank int) (Shot, error) {
	if err := cfg.Validate(); err != nil {
		return Shot{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(rank)*7919))
	// Per-rank aggregate target in [MinAggregate, MaxAggregate].
	span := float64(cfg.MaxAggregate - cfg.MinAggregate)
	target := float64(cfg.MinAggregate) + rng.Float64()*span

	weights := make([]float64, cfg.Snapshots)
	var sum float64
	for i := range weights {
		x := float64(i) / float64(max(cfg.Snapshots-1, 1))
		jitter := math.Exp(rng.NormFloat64() * cfg.Jitter)
		weights[i] = ramp(x) * jitter
		sum += weights[i]
	}
	scale := target / sum
	sizes := make([]int64, cfg.Snapshots)
	for i, w := range weights {
		sz := int64(w * scale)
		if sz < 1<<20 {
			sz = 1 << 20 // floor: a megabyte of headers/coefficients
		}
		sizes[i] = sz
	}
	return Shot{Rank: rank, Sizes: sizes}, nil
}

// UniformShot returns the uniform-size variant (§5.3.3: 128 MB × 384).
func UniformShot(rank, snapshots int, size int64) Shot {
	sizes := make([]int64, snapshots)
	for i := range sizes {
		sizes[i] = size
	}
	return Shot{Rank: rank, Sizes: sizes}
}

// SnapshotStats is the Fig. 4 row for one snapshot index: min/avg/max
// across the ranks of an ensemble.
type SnapshotStats struct {
	Snapshot      int
	Min, Avg, Max int64
}

// Stats computes the Fig. 4 distribution across shots (all shots must
// have equal length).
func Stats(shots []Shot) ([]SnapshotStats, error) {
	if len(shots) == 0 {
		return nil, fmt.Errorf("rtm: no shots")
	}
	n := len(shots[0].Sizes)
	for _, s := range shots {
		if len(s.Sizes) != n {
			return nil, fmt.Errorf("rtm: shot %d has %d snapshots, want %d", s.Rank, len(s.Sizes), n)
		}
	}
	out := make([]SnapshotStats, n)
	for i := 0; i < n; i++ {
		st := SnapshotStats{Snapshot: i, Min: math.MaxInt64}
		var sum int64
		for _, s := range shots {
			v := s.Sizes[i]
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
			sum += v
		}
		st.Avg = sum / int64(len(shots))
		out[i] = st
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
