package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"score/internal/metrics"
)

// This file reads back the machine-readable artifacts the benchmarks
// emit: the metrics registry's JSON export (ckptbench -metrics-out) and
// the pipeline bench records (make bench-smoke), so downstream tooling
// and tests can round-trip them.

// LoadMetricsExport parses a metrics registry JSON export, validating
// its schema tag.
func LoadMetricsExport(r io.Reader) (*metrics.ExportFile, error) {
	var f metrics.ExportFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("report: parsing metrics export: %w", err)
	}
	if f.Schema != metrics.ExportSchema {
		return nil, fmt.Errorf("report: metrics export schema %q, want %q", f.Schema, metrics.ExportSchema)
	}
	return &f, nil
}

// LoadMetricsFile reads a metrics registry JSON export from disk.
func LoadMetricsFile(path string) (*metrics.ExportFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadMetricsExport(f)
}

// MetricsTable renders one summary row per run of an export — a quick
// human-readable view of a -metrics-out file.
func MetricsTable(f *metrics.ExportFile) *Table {
	tab := NewTable("Metrics export — per-run summaries",
		"run", "ckpt bytes", "restore bytes", "retries", "degradations", "pending")
	for _, run := range f.Runs {
		s := run.Summary
		tab.AddRow(run.Label, s.CheckpointBytes, s.RestoreBytes,
			s.TotalRetries(), s.TotalDegradations(), s.PendingFlushBytes())
	}
	return tab
}

// BenchSchema tags the pipeline bench-record file format.
const BenchSchema = "score-bench/v1"

// BenchRecord is one benchmark measurement from the bench-smoke run.
type BenchRecord struct {
	// Name identifies the benchmark case (e.g. "pipeline/chunked").
	Name string `json:"name"`
	// NsPerOp is the simulated nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesMoved is the total payload the case pushed through the
	// fabric.
	BytesMoved int64 `json:"bytes_moved"`
	// OverlapRatio is hidden transfer time over summed hop busy time
	// (0 = store-and-forward, approaching 1 with deep pipelines).
	OverlapRatio float64 `json:"overlap_ratio"`
}

// benchFile is the on-disk envelope of a bench-record set.
type benchFile struct {
	Schema  string        `json:"schema"`
	Records []BenchRecord `json:"records"`
}

// WriteBenchRecords writes records as an indented JSON file, sorted by
// name for stable diffs.
func WriteBenchRecords(w io.Writer, records []BenchRecord) error {
	sorted := make([]BenchRecord, len(records))
	copy(sorted, records)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	data, err := json.MarshalIndent(benchFile{Schema: BenchSchema, Records: sorted}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteBenchFile writes records to path via WriteBenchRecords.
func WriteBenchFile(path string, records []BenchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBenchRecords(f, records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBenchRecords parses a bench-record file, validating its schema
// tag.
func LoadBenchRecords(r io.Reader) ([]BenchRecord, error) {
	var f benchFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("report: parsing bench records: %w", err)
	}
	if f.Schema != BenchSchema {
		return nil, fmt.Errorf("report: bench records schema %q, want %q", f.Schema, BenchSchema)
	}
	return f.Records, nil
}

// LoadBenchFile reads a bench-record file from disk.
func LoadBenchFile(path string) ([]BenchRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadBenchRecords(f)
}
