package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"score/internal/metrics"
)

// This file reads back the machine-readable artifacts the benchmarks
// emit: the metrics registry's JSON export (ckptbench -metrics-out) and
// the pipeline bench records (make bench-smoke), so downstream tooling
// and tests can round-trip them.

// LoadMetricsExport parses a metrics registry JSON export, validating
// its schema tag.
func LoadMetricsExport(r io.Reader) (*metrics.ExportFile, error) {
	var f metrics.ExportFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("report: parsing metrics export: %w", err)
	}
	if f.Schema != metrics.ExportSchema {
		return nil, fmt.Errorf("report: metrics export schema %q, want %q", f.Schema, metrics.ExportSchema)
	}
	return &f, nil
}

// LoadMetricsFile reads a metrics registry JSON export from disk.
func LoadMetricsFile(path string) (*metrics.ExportFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadMetricsExport(f)
}

// MetricsTable renders one summary row per run of an export — a quick
// human-readable view of a -metrics-out file.
func MetricsTable(f *metrics.ExportFile) *Table {
	tab := NewTable("Metrics export — per-run summaries",
		"run", "ckpt bytes", "restore bytes", "retries", "degradations", "pending")
	for _, run := range f.Runs {
		s := run.Summary
		tab.AddRow(run.Label, s.CheckpointBytes, s.RestoreBytes,
			s.TotalRetries(), s.TotalDegradations(), s.PendingFlushBytes())
	}
	return tab
}

// BenchSchema tags the pipeline bench-record file format.
const BenchSchema = "score-bench/v1"

// BenchRecord is one benchmark measurement from the bench-smoke run.
type BenchRecord struct {
	// Name identifies the benchmark case (e.g. "pipeline/chunked").
	Name string `json:"name"`
	// NsPerOp is the simulated nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// WallNsPerOp is the real (host) nanoseconds the case took per
	// operation — the simulator-speed trajectory, distinct from the
	// simulated time above (which must stay bit-identical across engine
	// optimizations). Zero in records written before it was tracked.
	WallNsPerOp float64 `json:"wall_ns_per_op,omitempty"`
	// BytesMoved is the total payload the case pushed through the
	// fabric.
	BytesMoved int64 `json:"bytes_moved"`
	// OverlapRatio is hidden transfer time over summed hop busy time
	// (0 = store-and-forward, approaching 1 with deep pipelines).
	OverlapRatio float64 `json:"overlap_ratio"`
	// HitRate is the cache hit fraction [0,1] for cache-policy cases
	// (the eviction ablation matrix); omitted elsewhere.
	HitRate float64 `json:"hit_rate,omitempty"`
}

// benchFile is the on-disk envelope of a bench-record set.
type benchFile struct {
	Schema  string        `json:"schema"`
	Records []BenchRecord `json:"records"`
}

// WriteBenchRecords writes records as an indented JSON file, sorted by
// name for stable diffs.
func WriteBenchRecords(w io.Writer, records []BenchRecord) error {
	sorted := make([]BenchRecord, len(records))
	copy(sorted, records)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	data, err := json.MarshalIndent(benchFile{Schema: BenchSchema, Records: sorted}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteBenchFile writes records to path via WriteBenchRecords.
func WriteBenchFile(path string, records []BenchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBenchRecords(f, records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBenchRecords parses a bench-record file, validating its schema
// tag.
func LoadBenchRecords(r io.Reader) ([]BenchRecord, error) {
	var f benchFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("report: parsing bench records: %w", err)
	}
	if f.Schema != BenchSchema {
		return nil, fmt.Errorf("report: bench records schema %q, want %q", f.Schema, BenchSchema)
	}
	return f.Records, nil
}

// LoadBenchFile reads a bench-record file from disk.
func LoadBenchFile(path string) ([]BenchRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadBenchRecords(f)
}

// SimSpeedSchema tags the simulator-speed record file format
// (BENCH_simspeed.json and its committed baseline).
const SimSpeedSchema = "score-simspeed/v1"

// SimSpeedRecord is one simulator-speed measurement: how fast the
// discrete-event engine itself retires model events, and what one
// operation costs in allocations. See DESIGN.md §14 for why the gated
// throughput counts model events rather than engine wakeups.
type SimSpeedRecord struct {
	// Name identifies the case (e.g. "sweep/10k-serial").
	Name string `json:"name"`
	// EventsPerSec is model events retired per wall second (the gated
	// headline).
	EventsPerSec float64 `json:"events_per_sec"`
	// WakeupsPerSec is engine wakeups per wall second (diagnostic).
	WakeupsPerSec float64 `json:"wakeups_per_sec,omitempty"`
	// AllocsPerOp is heap allocations per operation (one whole sweep).
	AllocsPerOp int64 `json:"allocs_per_op"`
	// WallNsPerOp is real nanoseconds per operation.
	WallNsPerOp float64 `json:"wall_ns_per_op,omitempty"`
}

// simSpeedFile is the on-disk envelope of a simulator-speed record set.
type simSpeedFile struct {
	Schema  string           `json:"schema"`
	Records []SimSpeedRecord `json:"records"`
}

// WriteSimSpeedFile writes records to path as an indented JSON file,
// sorted by name for stable diffs.
func WriteSimSpeedFile(path string, records []SimSpeedRecord) error {
	sorted := make([]SimSpeedRecord, len(records))
	copy(sorted, records)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	data, err := json.MarshalIndent(simSpeedFile{Schema: SimSpeedSchema, Records: sorted}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSimSpeedFile reads a simulator-speed record file from disk,
// validating its schema tag.
func LoadSimSpeedFile(path string) ([]SimSpeedRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var sf simSpeedFile
	if err := json.NewDecoder(f).Decode(&sf); err != nil {
		return nil, fmt.Errorf("report: parsing simspeed records: %w", err)
	}
	if sf.Schema != SimSpeedSchema {
		return nil, fmt.Errorf("report: simspeed records schema %q, want %q", sf.Schema, SimSpeedSchema)
	}
	return sf.Records, nil
}
