package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"score/internal/slo"
)

// This file defines the SLO compliance artifact: the versioned JSON
// envelope ckptbench writes (-slo-out) holding, per run, the engine's
// end-of-run report — objective compliance, budget remaining, and the
// alert fire/resolve history — plus the human-readable compliance table
// rendered from it.

// SLOSchema tags the SLO compliance file format.
const SLOSchema = "score-slo/v1"

// SLORun is one run's (scenario's) SLO report.
type SLORun struct {
	// Label names the run (same labels as the metrics export).
	Label string `json:"label"`
	// Report is the engine's end-of-run output.
	Report slo.Report `json:"report"`
}

// sloFile is the on-disk envelope.
type sloFile struct {
	Schema string   `json:"schema"`
	Runs   []SLORun `json:"runs"`
}

// WriteSLO writes runs as an indented JSON file, sorted by label for
// stable diffs (objectives and alerts already carry the engine's
// deterministic evaluation order).
func WriteSLO(w io.Writer, runs []SLORun) error {
	sorted := make([]SLORun, len(runs))
	copy(sorted, runs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
	data, err := json.MarshalIndent(sloFile{Schema: SLOSchema, Runs: sorted}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteSLOFile writes runs to path via WriteSLO.
func WriteSLOFile(path string, runs []SLORun) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSLO(f, runs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSLO parses an SLO compliance file, validating its schema tag.
func LoadSLO(r io.Reader) ([]SLORun, error) {
	var f sloFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("report: parsing slo report: %w", err)
	}
	if f.Schema != SLOSchema {
		return nil, fmt.Errorf("report: slo schema %q, want %q", f.Schema, SLOSchema)
	}
	return f.Runs, nil
}

// LoadSLOFile reads an SLO compliance file from disk.
func LoadSLOFile(path string) ([]SLORun, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSLO(f)
}

// SLOTable renders the per-run compliance table: one row per objective
// with its class, goal, compliance, budget remaining, peak burn, alert
// tally, and the dominant attribution behind its bad events.
func SLOTable(runs []SLORun) *Table {
	tab := NewTable("SLO compliance — objectives, burn, and attribution",
		"run", "objective", "class", "kind", "goal", "events", "compliance", "budget left", "peak burn", "alerts", "status", "driven by")
	sorted := make([]SLORun, len(runs))
	copy(sorted, runs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
	for _, run := range sorted {
		first := true
		for _, o := range run.Report.Objectives {
			runCol := ""
			if first {
				runCol = run.Label
				first = false
			}
			goal := fmt.Sprintf("%.3g", o.Goal)
			if o.Threshold > 0 {
				goal += " ≤ " + o.Threshold.Round(time.Microsecond).String()
			}
			status := "ok"
			switch {
			case o.Firing:
				status = "FIRING"
			case o.Fired > 0:
				status = "fired"
			case !o.Met():
				status = "MISSED"
			}
			tab.AddRow(runCol, o.Name, o.Class, o.Kind.String(), goal,
				fmt.Sprintf("%d", o.Events),
				fmt.Sprintf("%.3f", o.Compliance),
				fmt.Sprintf("%+.2f", o.BudgetRemaining),
				fmt.Sprintf("%.1f", o.PeakBurn),
				fmt.Sprintf("%d/%d", o.Fired, o.Resolved),
				status, o.Attribution)
		}
	}
	return tab
}
