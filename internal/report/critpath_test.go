package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"score/internal/metrics"
)

func sampleCritPathRuns() []CritPathRun {
	return []CritPathRun{
		{
			Label: "pipeline/mono",
			Records: []metrics.CritPathRecord{
				{
					Op: metrics.CritDurable, Version: 1, Start: 10 * time.Millisecond,
					Total: 3 * time.Millisecond,
					Components: map[string]time.Duration{
						metrics.CompXferPCIe: time.Millisecond,
						metrics.CompXferSSD:  2 * time.Millisecond,
					},
				},
				{
					Op: metrics.CritDurable, Version: 0, Start: 0,
					Total: 4 * time.Millisecond,
					Components: map[string]time.Duration{
						metrics.CompGPUAdmit: time.Millisecond,
						metrics.CompXferPCIe: time.Millisecond,
						metrics.CompXferSSD:  2 * time.Millisecond,
					},
				},
				{
					Op: metrics.CritRestore, Version: 0, Start: 20 * time.Millisecond,
					Total: time.Millisecond,
					Components: map[string]time.Duration{
						metrics.CompXferPCIe: time.Millisecond,
					},
				},
			},
		},
	}
}

func TestCritPathRoundTrip(t *testing.T) {
	runs := sampleCritPathRuns()
	var buf bytes.Buffer
	if err := WriteCritPaths(&buf, runs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), CritPathSchema) {
		t.Fatalf("schema tag missing from output:\n%s", buf.String())
	}
	got, err := LoadCritPaths(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Label != "pipeline/mono" {
		t.Fatalf("round-trip runs = %+v", got)
	}
	recs := got[0].Records
	if len(recs) != 3 {
		t.Fatalf("round-trip kept %d records, want 3", len(recs))
	}
	// Writer sorts records by (op, version, start): durable v0, durable
	// v1, restore v0.
	if recs[0].Op != metrics.CritDurable || recs[0].Version != 0 ||
		recs[1].Op != metrics.CritDurable || recs[1].Version != 1 ||
		recs[2].Op != metrics.CritRestore {
		t.Fatalf("records not sorted: %+v", recs)
	}
	want := runs[0].Records[1] // durable v0 in the fixture
	if !reflect.DeepEqual(recs[0], want) {
		t.Errorf("durable v0 did not round-trip:\ngot  %+v\nwant %+v", recs[0], want)
	}

	// The components of every round-tripped record still telescope.
	for _, rec := range recs {
		var sum time.Duration
		for _, d := range rec.Components {
			sum += d
		}
		if sum+rec.Unattributed != rec.Total {
			t.Errorf("%s v%d: components %v + unattributed %v != total %v",
				rec.Op, rec.Version, sum, rec.Unattributed, rec.Total)
		}
	}
}

func TestCritPathFileDiskRoundTrip(t *testing.T) {
	path := t.TempDir() + "/critpath.json"
	runs := sampleCritPathRuns()
	if err := WriteCritPathFile(path, runs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCritPathFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Records) != 3 {
		t.Fatalf("disk round-trip = %+v", got)
	}
}

func TestLoadCritPathsRejectsWrongSchema(t *testing.T) {
	if _, err := LoadCritPaths(strings.NewReader(`{"schema":"bogus/v0","runs":[]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := LoadCritPaths(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestCritPathTable(t *testing.T) {
	tab := CritPathTable(sampleCritPathRuns())
	out := tab.String()
	for _, want := range []string{
		"pipeline/mono", "durable", "restore",
		metrics.CompXferSSD, metrics.CompXferPCIe, metrics.CompGPUAdmit,
		"57.1%", // xfer-ssd: 4ms of the 7ms durable total
	} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown table missing %q:\n%s", want, out)
		}
	}
	// Unattributed residue must surface, not vanish, when present.
	runs := sampleCritPathRuns()
	runs[0].Records[0].Unattributed = time.Millisecond
	runs[0].Records[0].Total += time.Millisecond
	if out := CritPathTable(runs).String(); !strings.Contains(out, metrics.CompUnattributed) {
		t.Errorf("unattributed residue missing from table:\n%s", out)
	}
}
