package report

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"score/internal/slo"
)

func sampleSLORuns() []SLORun {
	obj := slo.Objective{
		Name: "restore-p99", Class: "restore-critical", Kind: slo.KindRestoreLatency,
		Goal: 0.99, Threshold: 15 * time.Millisecond,
		Windows: []slo.Window{{Long: 50 * time.Millisecond, Short: 10 * time.Millisecond, Rate: 4}},
	}
	return []SLORun{
		{
			Label: "straggler/sev-20-unhedged",
			Report: slo.Report{
				Objectives: []slo.ObjectiveResult{{
					Objective: obj, Events: 16, Good: 2,
					Compliance: 0.125, BudgetRemaining: -86.5, PeakBurn: 93.8,
					Fired: 1, Firing: true, Attribution: "xfer-ssd",
				}},
				Alerts: []slo.Alert{{
					Objective: "restore-p99", Class: "restore-critical", Kind: slo.KindRestoreLatency,
					Event: slo.EventFire, At: 173 * time.Millisecond, Window: obj.Windows[0],
					Burn: 93.8, BudgetRemaining: -5.2, Attribution: "xfer-ssd",
				}},
				Warnings: []string{"slo conservation (degraded, 3 ledger events dropped): example"},
			},
		},
		{
			Label: "straggler/sev-1-unhedged",
			Report: slo.Report{
				Objectives: []slo.ObjectiveResult{{
					Objective: obj, Events: 16, Good: 16, Compliance: 1, BudgetRemaining: 1,
				}},
			},
		},
	}
}

// TestSLORoundTrip: score-slo/v1 survives write → load byte-for-byte in
// structure, with runs sorted by label on write.
func TestSLORoundTrip(t *testing.T) {
	runs := sampleSLORuns()
	path := filepath.Join(t.TempDir(), "slo.json")
	if err := WriteSLOFile(path, runs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSLOFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("loaded %d runs, want 2", len(back))
	}
	// Write sorts by label: sev-1 lands first.
	if back[0].Label != "straggler/sev-1-unhedged" || back[1].Label != "straggler/sev-20-unhedged" {
		t.Fatalf("labels out of order: %q, %q", back[0].Label, back[1].Label)
	}
	if !reflect.DeepEqual(back[1].Report, runs[0].Report) {
		t.Errorf("sev-20 report did not round-trip:\ngot  %+v\nwant %+v", back[1].Report, runs[0].Report)
	}
	if !reflect.DeepEqual(back[0].Report, runs[1].Report) {
		t.Errorf("sev-1 report did not round-trip:\ngot  %+v\nwant %+v", back[0].Report, runs[1].Report)
	}
}

// TestSLOSchemaValidation: a wrong or missing schema tag is rejected.
func TestSLOSchemaValidation(t *testing.T) {
	if _, err := LoadSLO(strings.NewReader(`{"schema":"score-slo/v0","runs":[]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := LoadSLO(strings.NewReader(`{"runs":[]}`)); err == nil {
		t.Error("missing schema accepted")
	}
	if _, err := LoadSLO(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestSLOTable: the compliance table carries the status and attribution
// columns the alert demo reads.
func TestSLOTable(t *testing.T) {
	var buf bytes.Buffer
	if err := SLOTable(sampleSLORuns()).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"restore-p99", "restore-critical", "FIRING", "xfer-ssd", "restore-latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
