package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"score/internal/metrics"
)

func sampleRegistry() *metrics.Registry {
	rec := metrics.NewRecorder()
	rec.Checkpoint(8192, 3*time.Millisecond)
	rec.CheckpointAccepted(8192)
	rec.ConserveDurable(8192)
	rec.Restore(0, 8192, time.Millisecond, 2)
	rec.Retry("nvme")
	rec.RetryBout(true)
	rec.CritPath(metrics.CritPathRecord{
		Op: metrics.CritDurable, Version: 0, Total: 3 * time.Millisecond,
		Components: map[string]time.Duration{
			metrics.CompCopyD2D: time.Millisecond,
			metrics.CompXferSSD: 2 * time.Millisecond,
		},
	})
	rec.CritPath(metrics.CritPathRecord{
		Op: metrics.CritRestore, Version: 0, Total: time.Millisecond,
		Components: map[string]time.Duration{
			metrics.CompXferPCIe: time.Millisecond,
		},
	})
	reg := metrics.NewRegistry()
	reg.Record("fig6a (drained-restore)", rec.Snapshot())
	reg.RecordSeries("fig6a (drained-restore)", map[string][]metrics.Sample{
		"rank0.cache.gpu.used_bytes": {
			{At: time.Millisecond, Value: 4096},
			{At: 2 * time.Millisecond, Value: 8192},
		},
	})
	return reg
}

func TestMetricsExportRoundTrip(t *testing.T) {
	reg := sampleRegistry()
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	f, err := LoadMetricsExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 1 {
		t.Fatalf("round-trip kept %d runs, want 1", len(f.Runs))
	}
	run := f.Runs[0]
	if run.Label != "fig6a (drained-restore)" {
		t.Errorf("label = %q", run.Label)
	}
	s := run.Summary
	if s.CheckpointBytes != 8192 || s.RestoreBytes != 8192 || s.TotalRetries() != 1 {
		t.Errorf("summary did not round-trip: %+v", s)
	}
	if h, ok := s.Histograms[metrics.HistCheckpoint]; !ok || h.Count != 1 || h.P99() == 0 {
		t.Errorf("checkpoint histogram did not round-trip: %+v", h)
	}
	if err := metrics.CheckInvariantsQuiescent(s); err != nil {
		t.Errorf("round-tripped summary fails invariants: %v", err)
	}
	pts := run.Series["rank0.cache.gpu.used_bytes"]
	if len(pts) != 2 || pts[1].Value != 8192 {
		t.Errorf("series did not round-trip: %+v", pts)
	}

	tab := MetricsTable(f)
	out := tab.String()
	if !strings.Contains(out, "fig6a (drained-restore)") || !strings.Contains(out, "8192") {
		t.Errorf("MetricsTable missing run data:\n%s", out)
	}
}

func TestLoadMetricsExportRejectsWrongSchema(t *testing.T) {
	if _, err := LoadMetricsExport(strings.NewReader(`{"schema":"bogus/v0","runs":[]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := LoadMetricsExport(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestBenchRecordsRoundTrip(t *testing.T) {
	records := []BenchRecord{
		{Name: "pipeline/mono", NsPerOp: 2.5e6, BytesMoved: 64 << 20, OverlapRatio: 0},
		{Name: "pipeline/chunked", NsPerOp: 1.2e6, BytesMoved: 64 << 20, OverlapRatio: 0.55},
		{Name: "evict/kv/arc", NsPerOp: 3.2e5, BytesMoved: 32 << 20, HitRate: 0.958},
	}
	var buf bytes.Buffer
	if err := WriteBenchRecords(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("round-trip kept %d records, want 3", len(got))
	}
	// Writer sorts by name for stable diffs.
	if got[0].Name != "evict/kv/arc" || got[1].Name != "pipeline/chunked" || got[2].Name != "pipeline/mono" {
		t.Errorf("records not sorted by name: %q, %q, %q", got[0].Name, got[1].Name, got[2].Name)
	}
	if got[1].OverlapRatio != 0.55 || got[1].BytesMoved != 64<<20 || got[1].NsPerOp != 1.2e6 {
		t.Errorf("chunked record did not round-trip: %+v", got[1])
	}
	if got[0].HitRate != 0.958 {
		t.Errorf("hit rate did not round-trip: %+v", got[0])
	}
	if got[1].HitRate != 0 {
		t.Errorf("zero hit rate should stay zero after round-trip: %+v", got[1])
	}
}

func TestLoadBenchRecordsRejectsWrongSchema(t *testing.T) {
	if _, err := LoadBenchRecords(strings.NewReader(`{"schema":"bogus","records":[]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
}

func TestBenchFileDiskRoundTrip(t *testing.T) {
	path := t.TempDir() + "/BENCH_pipeline.json"
	records := []BenchRecord{{Name: "pipeline/chunked", NsPerOp: 1e6, BytesMoved: 1 << 20, OverlapRatio: 0.4}}
	if err := WriteBenchFile(path, records); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != records[0] {
		t.Errorf("disk round-trip = %+v, want %+v", got, records)
	}
}
