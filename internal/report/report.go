// Package report renders experiment results as aligned text tables and
// series — the rows and curves of the paper's figures, printed rather
// than plotted.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows under a header and renders with aligned columns.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Sparkline renders values as a compact unicode bar series, handy for
// eyeballing a figure's curve in a terminal.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	span := max - min
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - min) / span * float64(len(blocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
