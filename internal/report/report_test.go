package report

import (
	"strings"
	"testing"
)

func TestTableRendersAlignedColumns(t *testing.T) {
	tab := NewTable("Fig X", "approach", "ckpt GB/s", "restore GB/s")
	tab.AddRow("score-all-hints", 12.5, 30.25)
	tab.AddRow("uvm", 1.0, 2.0)
	out := tab.String()
	if !strings.Contains(out, "Fig X") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "score-all-hints") || !strings.Contains(out, "12.50") {
		t.Errorf("row content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	if tab.Rows() != 2 {
		t.Errorf("Rows() = %d, want 2", tab.Rows())
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(1, 2)
	out := tab.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title produced a leading blank line")
	}
}

func TestSparkline(t *testing.T) {
	if s := Sparkline(nil); s != "" {
		t.Errorf("empty sparkline = %q", s)
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length = %d, want 4", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series should render minimal blocks: %q", flat)
		}
	}
}
