package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"score/internal/metrics"
)

// This file defines the critical-path attribution artifact: the
// versioned JSON envelope ckptbench writes (-critpath-out) holding,
// per run, every CritPathRecord the instrumentation emitted, plus the
// human-readable breakdown table rendered from it. The analyzer's
// contract — components + unattributed telescope to each record's
// total — is what makes the aggregated table trustworthy: a non-zero
// "unattributed" row means the instrumentation missed a blocking
// point, not that the table rounded something away.

// CritPathSchema tags the critical-path attribution file format.
const CritPathSchema = "score-critpath/v1"

// CritPathRun is one run's worth of attribution records.
type CritPathRun struct {
	// Label names the run (same labels as the metrics export).
	Label string `json:"label"`
	// Records are the per-operation latency decompositions.
	Records []metrics.CritPathRecord `json:"records"`
}

// critPathFile is the on-disk envelope.
type critPathFile struct {
	Schema string        `json:"schema"`
	Runs   []CritPathRun `json:"runs"`
}

// WriteCritPaths writes runs as an indented JSON file. Runs are sorted
// by label and records by (op, version, start, total) for stable diffs.
func WriteCritPaths(w io.Writer, runs []CritPathRun) error {
	sorted := make([]CritPathRun, len(runs))
	copy(sorted, runs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
	for i := range sorted {
		recs := make([]metrics.CritPathRecord, len(sorted[i].Records))
		copy(recs, sorted[i].Records)
		sort.SliceStable(recs, func(a, b int) bool {
			x, y := recs[a], recs[b]
			if x.Op != y.Op {
				return x.Op < y.Op
			}
			if x.Version != y.Version {
				return x.Version < y.Version
			}
			if x.Start != y.Start {
				return x.Start < y.Start
			}
			return x.Total < y.Total
		})
		sorted[i].Records = recs
	}
	data, err := json.MarshalIndent(critPathFile{Schema: CritPathSchema, Runs: sorted}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteCritPathFile writes runs to path via WriteCritPaths.
func WriteCritPathFile(path string, runs []CritPathRun) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCritPaths(f, runs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCritPaths parses a critical-path attribution file, validating its
// schema tag.
func LoadCritPaths(r io.Reader) ([]CritPathRun, error) {
	var f critPathFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("report: parsing critpath records: %w", err)
	}
	if f.Schema != CritPathSchema {
		return nil, fmt.Errorf("report: critpath schema %q, want %q", f.Schema, CritPathSchema)
	}
	return f.Runs, nil
}

// LoadCritPathFile reads a critical-path attribution file from disk.
func LoadCritPathFile(path string) ([]CritPathRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCritPaths(f)
}

// CritPathTable renders the per-component breakdown of the runs' two
// operation kinds: for each (run, op), one row per component with its
// summed time and share of the op's total latency. The residual the
// analyzer could not explain appears as the "unattributed" component;
// on a healthy run it is absent (the conservation invariant asserts it
// is zero per record).
func CritPathTable(runs []CritPathRun) *Table {
	tab := NewTable("Critical-path attribution — per-component breakdown",
		"run", "op", "ops", "mean latency", "component", "time", "share")
	for _, run := range runs {
		s := metrics.Summary{CritPaths: run.Records}
		for _, op := range []string{metrics.CritDurable, metrics.CritRestore} {
			count, total, comps := s.CritPathBreakdown(op)
			if count == 0 {
				continue
			}
			names := make([]string, 0, len(comps))
			for c := range comps {
				names = append(names, c)
			}
			// Largest component first; ties break alphabetically so the
			// table is deterministic.
			sort.Slice(names, func(i, j int) bool {
				if comps[names[i]] != comps[names[j]] {
					return comps[names[i]] > comps[names[j]]
				}
				return names[i] < names[j]
			})
			mean := time.Duration(0)
			if count > 0 {
				mean = total / time.Duration(count)
			}
			first := true
			for _, c := range names {
				runCol, opCol, opsCol, meanCol := "", "", "", ""
				if first {
					runCol, opCol = run.Label, op
					opsCol = fmt.Sprintf("%d", count)
					meanCol = mean.Round(time.Microsecond).String()
					first = false
				}
				share := 0.0
				if total > 0 {
					share = float64(comps[c]) / float64(total) * 100
				}
				tab.AddRow(runCol, opCol, opsCol, meanCol, c,
					comps[c].Round(time.Microsecond).String(),
					fmt.Sprintf("%5.1f%%", share))
			}
		}
	}
	return tab
}
