// Determinism property tests for the simulator engine itself: the timer
// wheel must be observation-equivalent to the reference heap, and
// parallel same-instant wakeups must preserve every observable total and
// the deterministically-ordered trace — byte for byte. These are the
// contracts DESIGN.md §14 states; the goldens pin them for the full
// runtime, this test pins them for the engine in isolation.
package score_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"score/internal/fabric"
	"score/internal/metrics"
	"score/internal/simclock"
	"score/internal/trace"
)

// simScenarioFingerprint runs a fixed multi-rank compute/flush/restore
// scenario under the given clock options and renders everything
// observable — per-rank lifecycle ledgers, merged metric totals, link
// byte counters, and the final virtual time — into one string.
//
// The scenario quantizes compute times to a few values so ranks form
// same-instant cohorts: the case where serial and parallel wake differ
// most in real execution order, and therefore the sharpest determinism
// probe.
func simScenarioFingerprint(t *testing.T, opts ...simclock.VirtualOption) string {
	t.Helper()
	const (
		ranks  = 64
		nlinks = 8
		rounds = 6
	)
	clk := simclock.NewVirtual(opts...)
	tr := trace.New(clk.Now)
	flight := tr.Flight()
	links := make([]*fabric.Link, nlinks)
	for i := range links {
		links[i] = fabric.NewLink(clk, fmt.Sprintf("link%d", i), 25*fabric.GB, time.Microsecond)
	}
	recs := make([]*metrics.Recorder, ranks)
	for r := range recs {
		recs[r] = metrics.NewRecorder()
	}

	clk.Run(func() {
		wg := simclock.NewWaitGroup(clk)
		for r := 0; r < ranks; r++ {
			r := r
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				rec := recs[r]
				l := links[r%nlinks]
				for k := 0; k < rounds; k++ {
					// Quantized compute: 4 distinct values -> cohorts of ~16.
					jitter := ((r*7 + k*13) % 4) * 25
					clk.Sleep(time.Duration(100+jitter) * time.Microsecond)
					v := int64(k)
					flight.Record(r, v, trace.LCreated, "gpu", "")
					bytes := int64(1<<20) + int64(r%3)<<12
					rec.CheckpointAccepted(bytes)
					start := clk.Now()
					if _, err := l.TryTransfer(bytes); err != nil {
						t.Error(err)
						return
					}
					d := clk.Now() - start
					rec.Checkpoint(bytes, d)
					rec.ObserveDuration(metrics.HistFlushPrefix+"gpu", d)
					rec.ConserveDurable(bytes)
					flight.Record(r, v, trace.LDurable, "ssd", "")
					if k%2 == 1 {
						rstart := clk.Now()
						if _, err := l.TryTransfer(bytes / 2); err != nil {
							t.Error(err)
							return
						}
						rec.Restore(k, bytes/2, clk.Now()-rstart, k%3)
						flight.Record(r, v, trace.LRestored, "gpu", "")
					}
				}
			})
		}
		wg.Wait()
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, "final=%v\n", clk.Now())
	summaries := make([]metrics.Summary, ranks)
	for r := range recs {
		summaries[r] = recs[r].Snapshot()
	}
	merged, err := json.Marshal(metrics.Merge(summaries...))
	if err != nil {
		t.Fatal(err)
	}
	sb.Write(merged)
	sb.WriteByte('\n')
	for _, l := range links {
		st := l.StatsSnapshot()
		fmt.Fprintf(&sb, "link %s bytes=%d busy=%v\n", l.Name(), st.Bytes, st.Busy)
	}
	for _, r := range flight.Ranks() {
		for _, ev := range flight.Ledger(r) {
			fmt.Fprintf(&sb, "%d %d %s %s %v\n", ev.Rank, ev.Version, ev.Kind, ev.Tier, ev.At)
		}
	}
	return sb.String()
}

// TestSimDeterminismWheelVsHeap: the default timer wheel and the
// reference heap must produce byte-identical observations.
func TestSimDeterminismWheelVsHeap(t *testing.T) {
	wheel := simScenarioFingerprint(t)
	heap := simScenarioFingerprint(t, simclock.WithHeapTimers())
	if wheel != heap {
		t.Fatalf("wheel and heap timer backends diverged:\nwheel:\n%s\nheap:\n%s", wheel, heap)
	}
}

// TestSimDeterminismSerialVsParallel: parallel same-instant wakeups must
// leave every metric total, link counter, and deterministically-sorted
// ledger byte-identical to the serial engine. Repeated runs guard
// against scheduler-order flakes in the parallel mode.
func TestSimDeterminismSerialVsParallel(t *testing.T) {
	serial := simScenarioFingerprint(t)
	for i := 0; i < 5; i++ {
		par := simScenarioFingerprint(t, simclock.WithParallelWake())
		if serial != par {
			t.Fatalf("run %d: parallel wake diverged from serial engine:\nserial:\n%s\nparallel:\n%s", i, serial, par)
		}
	}
}

// TestSimDeterminismRepeatable: the engine's own baseline — two serial
// runs of the same scenario are byte-identical.
func TestSimDeterminismRepeatable(t *testing.T) {
	a := simScenarioFingerprint(t)
	b := simScenarioFingerprint(t)
	if a != b {
		t.Fatal("two serial runs of the same scenario diverged")
	}
}
