package score_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"score"
)

// TestCrashRecoveryRoundTrip simulates a process failure: a first client
// writes checkpoints with a durable store, drains its flushes, and is
// abandoned (as if the process died); a second client opened on the same
// store recovers the full history and restores every checkpoint through
// the normal promotion path, bit-exact.
func TestCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n = 12
	payloads := make([][]byte, n)
	for v := range payloads {
		payloads[v] = bytes.Repeat([]byte{byte(v * 3)}, 64*1024)
	}

	// First life: write, flush, "crash" (no Close needed for the store;
	// durability comes from the flush chain).
	sim1, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim1.Run(func() {
		c, err := sim1.NewClient(0, 0,
			score.WithGPUCache(256<<10), score.WithHostCache(1<<20),
			score.WithStore(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v := 0; v < n; v++ {
			if err := c.Checkpoint(int64(v), payloads[v]); err != nil {
				t.Fatal(err)
			}
			c.Compute(time.Millisecond)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
	})

	// The store directory must now contain the checkpoint files.
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != n {
		t.Fatalf("store holds %d files (%v), want %d", len(files), err, n)
	}

	// Second life: recover and read everything back in reverse.
	sim2, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim2.Run(func() {
		c, err := sim2.NewClient(0, 0,
			score.WithGPUCache(256<<10), score.WithHostCache(1<<20),
			score.WithStore(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		recovered := c.RecoveredVersions()
		if len(recovered) != n {
			t.Fatalf("recovered %d versions, want %d", len(recovered), n)
		}
		for v := n - 1; v >= 0; v-- {
			c.PrefetchEnqueue(int64(v))
		}
		c.PrefetchStart()
		for v := n - 1; v >= 0; v-- {
			got, err := c.Restart(int64(v))
			if err != nil {
				t.Fatalf("restart %d after recovery: %v", v, err)
			}
			if !bytes.Equal(got, payloads[v]) {
				t.Fatalf("restart %d: data mismatch after recovery", v)
			}
		}
		if size, err := c.RestartSize(5); err != nil || size != 64*1024 {
			t.Errorf("RestartSize after recovery = %d, %v", size, err)
		}
		// A recovered version cannot be overwritten (immutability).
		if err := c.Checkpoint(0, []byte("overwrite")); err == nil {
			t.Error("overwriting a recovered version should fail")
		}
		// New versions can still be appended and restored.
		if err := c.Checkpoint(int64(n), []byte("new era")); err != nil {
			t.Fatal(err)
		}
		if got, err := c.Restart(int64(n)); err != nil || string(got) != "new era" {
			t.Errorf("post-recovery checkpoint: %q, %v", got, err)
		}
	})
}

// TestRecoveryRejectsCorruptStore flips a byte in a stored checkpoint and
// verifies the client surfaces it instead of silently restoring garbage.
func TestRecoveryRejectsCorruptStore(t *testing.T) {
	dir := t.TempDir()
	sim1, _ := score.NewSim()
	sim1.Run(func() {
		c, err := sim1.NewClient(0, 0,
			score.WithGPUCache(256<<10), score.WithHostCache(1<<20),
			score.WithStore(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Checkpoint(0, bytes.Repeat([]byte{0xAB}, 4096)); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
	})
	path := filepath.Join(dir, "0.ckpt")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	sim2, _ := score.NewSim()
	sim2.Run(func() {
		if _, err := sim2.NewClient(0, 0, score.WithStore(dir)); err == nil {
			t.Error("client opened on a corrupt store without complaint")
		}
	})
}

// TestVirtualPayloadsNotPersisted confirms size-only checkpoints skip the
// store (there are no bytes to persist).
func TestVirtualPayloadsNotPersisted(t *testing.T) {
	dir := t.TempDir()
	sim, _ := score.NewSim()
	sim.Run(func() {
		c, err := sim.NewClient(0, 0, score.WithStore(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.CheckpointVirtual(0, 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
	})
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) != 0 {
		t.Errorf("virtual payloads persisted %d files", len(files))
	}
}
