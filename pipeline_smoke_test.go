package score_test

import (
	"flag"
	"testing"
	"time"

	"score/internal/experiments"
	"score/internal/report"
	"score/internal/rtm"
)

// benchOut, when set, makes the smoke test write its measurements as a
// bench-record JSON file (make bench-smoke passes BENCH_pipeline.json).
var benchOut = flag.String("bench.out", "", "write pipeline bench records to this JSON file")

// TestChunkedPipelineSmoke is the `make bench-smoke` gate: one run of the
// chunked-vs-monolithic ablation on the GPUDirect shot. Chunked transfer
// pipelining must not regress below the monolithic baseline on any
// headline metric — it overlaps the PCIe and NVMe hops of every flush and
// promotion, so it should strictly help here.
func TestChunkedPipelineSmoke(t *testing.T) {
	wall := map[int64]time.Duration{}
	shot := func(chunk int64) experiments.ShotResult {
		cfg := experiments.ShotConfig{
			Uniform: true, WaitForFlush: true, Order: rtm.Reverse,
			Combo:     experiments.Combo{Approach: experiments.Score, Hints: experiments.AllHints},
			GPUDirect: true,
		}
		benchScale().Apply(&cfg)
		cfg.ChunkSize = chunk
		start := time.Now()
		res, err := experiments.RunShot(cfg)
		wall[chunk] = time.Since(start)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		return res
	}
	mono := shot(0)
	chunked := shot(benchScale().UniformSize / 8)

	if c, m := chunked.MeanCheckpointThroughput(), mono.MeanCheckpointThroughput(); c < m {
		t.Errorf("chunked checkpoint throughput %.1f MB/s regressed below monolithic %.1f MB/s",
			c/mb, m/mb)
	}
	if c, m := chunked.MeanRestoreThroughput(), mono.MeanRestoreThroughput(); c < m {
		t.Errorf("chunked restore throughput %.1f MB/s regressed below monolithic %.1f MB/s",
			c/mb, m/mb)
	}
	if c, m := chunked.TotalIOWait(), mono.TotalIOWait(); c > m {
		t.Errorf("chunked io-wait %v regressed above monolithic %v", c, m)
	}

	if *benchOut != "" {
		monoRec := benchRecord("pipeline/monolithic", mono)
		chunkedRec := benchRecord("pipeline/chunked", chunked)
		if ops := mono.MergedSummary().CheckpointOps; ops > 0 {
			monoRec.WallNsPerOp = float64(wall[0].Nanoseconds()) / float64(ops)
		}
		if ops := chunked.MergedSummary().CheckpointOps; ops > 0 {
			chunkedRec.WallNsPerOp = float64(wall[benchScale().UniformSize/8].Nanoseconds()) / float64(ops)
		}
		records := []report.BenchRecord{monoRec, chunkedRec}
		if err := report.WriteBenchFile(*benchOut, records); err != nil {
			t.Fatalf("writing %s: %v", *benchOut, err)
		}
		t.Logf("wrote %d bench records to %s", len(records), *benchOut)
	}
}

// benchRecord condenses one shot into the bench-record schema: simulated
// nanoseconds per checkpoint, total payload through the pipeline, and the
// fraction of hop busy time hidden by chunk overlap.
func benchRecord(name string, res experiments.ShotResult) report.BenchRecord {
	sum := res.MergedSummary()
	rec := report.BenchRecord{
		Name:       name,
		BytesMoved: sum.CheckpointBytes + sum.RestoreBytes,
	}
	if sum.CheckpointOps > 0 {
		rec.NsPerOp = float64(res.Duration.Nanoseconds()) / float64(sum.CheckpointOps)
	}
	if sum.PipelinedHopBusy > 0 {
		rec.OverlapRatio = sum.PipelineOverlap().Seconds() / sum.PipelinedHopBusy.Seconds()
	}
	return rec
}
