package score_test

import (
	"testing"

	"score/internal/experiments"
	"score/internal/rtm"
)

// TestChunkedPipelineSmoke is the `make bench-smoke` gate: one run of the
// chunked-vs-monolithic ablation on the GPUDirect shot. Chunked transfer
// pipelining must not regress below the monolithic baseline on any
// headline metric — it overlaps the PCIe and NVMe hops of every flush and
// promotion, so it should strictly help here.
func TestChunkedPipelineSmoke(t *testing.T) {
	shot := func(chunk int64) experiments.ShotResult {
		cfg := experiments.ShotConfig{
			Uniform: true, WaitForFlush: true, Order: rtm.Reverse,
			Combo:     experiments.Combo{Approach: experiments.Score, Hints: experiments.AllHints},
			GPUDirect: true,
		}
		benchScale().Apply(&cfg)
		cfg.ChunkSize = chunk
		res, err := experiments.RunShot(cfg)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		return res
	}
	mono := shot(0)
	chunked := shot(benchScale().UniformSize / 8)

	if c, m := chunked.MeanCheckpointThroughput(), mono.MeanCheckpointThroughput(); c < m {
		t.Errorf("chunked checkpoint throughput %.1f MB/s regressed below monolithic %.1f MB/s",
			c/mb, m/mb)
	}
	if c, m := chunked.MeanRestoreThroughput(), mono.MeanRestoreThroughput(); c < m {
		t.Errorf("chunked restore throughput %.1f MB/s regressed below monolithic %.1f MB/s",
			c/mb, m/mb)
	}
	if c, m := chunked.TotalIOWait(), mono.TotalIOWait(); c > m {
		t.Errorf("chunked io-wait %v regressed above monolithic %v", c, m)
	}
}
