package score_test

import (
	"flag"
	"testing"

	"score/internal/cachebuf"
	"score/internal/experiments"
	"score/internal/report"
)

// evictOut, when set, makes the smoke test write the ablation matrix as
// a bench-record JSON file (make bench-evict passes BENCH_evict.json).
var evictOut = flag.String("evict.out", "", "write eviction-ablation bench records to this JSON file")

// TestEvictionMatrixSmoke is the `make bench-evict` gate: the full
// policy × workload ablation matrix at bench scale, with two hit-rate
// sanity gates:
//
//   - the paper's score policy must never trail LRU on the RTM restore
//     scan (it sees the restore order; LRU only sees recency);
//   - at least one DBMS-inspired policy (LRU-K, 2Q, ARC, CLOCK-Pro)
//     must beat LRU on the KV-cache reuse workload — the scan bursts
//     that pollute pure recency are exactly what those policies filter.
func TestEvictionMatrixSmoke(t *testing.T) {
	res, err := experiments.EvictionMatrix(benchScale())
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(cachebuf.Policies()) * 2
	if len(res.Cells) != wantCells {
		t.Fatalf("matrix has %d cells, want %d", len(res.Cells), wantCells)
	}
	for _, c := range res.Cells {
		if c.Accesses == 0 {
			t.Errorf("%s/%s: no accesses measured", c.Workload, c.Policy)
		}
		if c.Evictions == 0 {
			t.Errorf("%s/%s: no evictions; workload is not applying cache pressure", c.Workload, c.Policy)
		}
	}

	cell := func(workload string, pol cachebuf.Policy) experiments.EvictCell {
		c, ok := res.Cell(workload, pol.String())
		if !ok {
			t.Fatalf("matrix is missing cell %s/%s", workload, pol)
		}
		return c
	}

	if s, l := cell("rtm", cachebuf.PolicyScore), cell("rtm", cachebuf.PolicyLRU); s.HitRate() < l.HitRate() {
		t.Errorf("score hit rate %.3f below LRU %.3f on the RTM workload", s.HitRate(), l.HitRate())
	}
	lruKV := cell("kv", cachebuf.PolicyLRU)
	beating := 0
	for _, pol := range []cachebuf.Policy{cachebuf.PolicyLRUK, cachebuf.Policy2Q, cachebuf.PolicyARC, cachebuf.PolicyClockPro} {
		if cell("kv", pol).HitRate() > lruKV.HitRate() {
			beating++
		}
	}
	if beating == 0 {
		t.Errorf("no DBMS-inspired policy beats LRU (hit rate %.3f) on the KV-cache workload", lruKV.HitRate())
	}

	if *evictOut != "" {
		records := res.BenchRecords()
		if err := report.WriteBenchFile(*evictOut, records); err != nil {
			t.Fatalf("writing %s: %v", *evictOut, err)
		}
		t.Logf("wrote %d bench records to %s", len(records), *evictOut)
	}
}
