// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), plus ablations of the design principles of §4.1.
//
// Each figure benchmark runs the corresponding experiment at the Small
// (1/16) scale — identical cache-pressure and bandwidth-to-working-set
// ratios as the paper's configuration, shrunk so the whole suite finishes
// in tens of seconds — and reports the application-observed throughputs
// of the headline configurations as custom metrics (MB/s of simulated
// I/O). cmd/ckptbench runs the same experiments at full paper scale.
//
// Run with:
//
//	go test -bench=. -benchmem
package score_test

import (
	"testing"
	"time"

	"score/internal/cachebuf"
	"score/internal/experiments"
	"score/internal/fabric"
	"score/internal/revolve"
	"score/internal/rtm"
	"score/internal/simclock"
	"score/internal/wavefield"
)

// benchScale trims the Small scale a little further so every figure
// benchmark iteration stays under a few seconds.
func benchScale() experiments.Scale {
	s := experiments.Small()
	s.Snapshots = 64
	s.Aggregate = 2 * fabric.GB
	return s
}

const mb = 1 << 20

// reportRows attaches the headline per-configuration throughputs of a
// figure to the benchmark output.
func reportRows(b *testing.B, fig experiments.FigureResult, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	var scoreRest, uvmRest, adiosRest float64
	var n1, n2, n3 int
	for _, r := range fig.Rows {
		switch r.Combo.Approach {
		case experiments.Score:
			scoreRest += r.RestBps
			n1++
		case experiments.UVM:
			uvmRest += r.RestBps
			n2++
		case experiments.ADIOS2:
			adiosRest += r.RestBps
			n3++
		}
	}
	if n1 > 0 {
		b.ReportMetric(scoreRest/float64(n1)/mb, "score-restore-MB/s")
	}
	if n2 > 0 {
		b.ReportMetric(uvmRest/float64(n2)/mb, "uvm-restore-MB/s")
	}
	if n3 > 0 {
		b.ReportMetric(adiosRest/float64(n3)/mb, "adios-restore-MB/s")
	}
}

// BenchmarkTable1Approaches runs one reverse-order shot per Table 1
// configuration (sub-benchmark per row).
func BenchmarkTable1Approaches(b *testing.B) {
	for _, combo := range experiments.Table1() {
		combo := combo
		b.Run(combo.Label(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiments.ShotConfig{
					Uniform: true, WaitForFlush: true, Order: rtm.Reverse, Combo: combo,
				}
				benchScale().Apply(&cfg)
				res, err := experiments.RunShot(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MeanCheckpointThroughput()/mb, "ckpt-MB/s")
				b.ReportMetric(res.MeanRestoreThroughput()/mb, "restore-MB/s")
			}
		})
	}
}

// BenchmarkFig4TraceGen regenerates the snapshot-size distribution.
func BenchmarkFig4TraceGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats, err := experiments.Fig4(benchScale(), 32)
		if err != nil {
			b.Fatal(err)
		}
		if len(stats) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig5aUniformWait(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5(benchScale(), true)
		reportRows(b, fig, err)
	}
}

func BenchmarkFig5bVariableWait(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5(benchScale(), false)
		reportRows(b, fig, err)
	}
}

func BenchmarkFig6aUniformNoWait(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig6(benchScale(), true)
		reportRows(b, fig, err)
	}
}

func BenchmarkFig6bVariableNoWait(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig6(benchScale(), false)
		reportRows(b, fig, err)
	}
}

func BenchmarkFig7PrefetchDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig7(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		all := fig.Series["All hints"]
		if len(all) == 0 {
			b.Fatal("no series")
		}
		var dist float64
		for _, p := range all {
			dist += float64(p.PrefetchDistance)
		}
		b.ReportMetric(dist/float64(len(all)), "mean-prefetch-distance")
	}
}

func BenchmarkFig8aComputeInterval(b *testing.B) {
	intervals := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig8a(benchScale(), intervals)
		reportRows(b, fig, err)
	}
}

func BenchmarkFig8bGPUCache(b *testing.B) {
	s := benchScale()
	caches := []int64{s.GPUCache / 2, s.GPUCache, s.GPUCache * 2}
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig8b(s, caches)
		reportRows(b, fig, err)
	}
}

func BenchmarkFig9aTightlyCoupled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig9(benchScale(), true, []int{8, 16})
		reportRows(b, fig, err)
	}
}

func BenchmarkFig9bEmbarrassinglyParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig9(benchScale(), false, []int{8, 16})
		reportRows(b, fig, err)
	}
}

// --- Ablations of the §4.1 design principles ---

// ablationShot runs the irregular variable-size shot (the hardest case,
// §5.4.3) with the given Score configuration mutations.
func ablationShot(b *testing.B, mutate func(*experiments.ShotConfig)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := experiments.ShotConfig{
			Uniform: false, WaitForFlush: false, Order: rtm.Irregular,
			Combo: experiments.Combo{Approach: experiments.Score, Hints: experiments.AllHints},
		}
		benchScale().Apply(&cfg)
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := experiments.RunShot(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanCheckpointThroughput()/mb, "ckpt-MB/s")
		b.ReportMetric(res.MeanRestoreThroughput()/mb, "restore-MB/s")
		b.ReportMetric(res.TotalIOWait().Seconds(), "io-wait-s")
	}
}

// BenchmarkAblationEvictionPolicy compares the paper's gap-aware scored
// policy (§4.2) against every other registered eviction policy (the
// classic baselines plus the DBMS-inspired suite).
func BenchmarkAblationEvictionPolicy(b *testing.B) {
	for _, pol := range cachebuf.Policies() {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			ablationShot(b, func(cfg *experiments.ShotConfig) { cfg.EvictionPolicy = pol })
		})
	}
}

// BenchmarkAblationSplitCache compares the shared flush/prefetch cache
// (§4.1.2) against split half-size regions.
func BenchmarkAblationSplitCache(b *testing.B) {
	b.Run("shared", func(b *testing.B) { ablationShot(b, nil) })
	b.Run("split", func(b *testing.B) {
		ablationShot(b, func(cfg *experiments.ShotConfig) { cfg.SplitCache = true })
	})
}

// BenchmarkAblationNoPinning compares the unified life cycle (§4.1.3,
// prefetched replicas pinned until consumed) against thrashable caching.
func BenchmarkAblationNoPinning(b *testing.B) {
	b.Run("pinned", func(b *testing.B) { ablationShot(b, nil) })
	b.Run("unpinned", func(b *testing.B) {
		ablationShot(b, func(cfg *experiments.ShotConfig) { cfg.NoPinning = true })
	})
}

// BenchmarkAblationOnDemandAlloc compares pre-allocated pinned caches
// (§4.1.4, registration paid once at initialization, before the shot)
// against per-checkpoint pinned allocation during the run.
func BenchmarkAblationOnDemandAlloc(b *testing.B) {
	b.Run("preallocated", func(b *testing.B) {
		ablationShot(b, func(cfg *experiments.ShotConfig) { cfg.UpfrontHostInit = true })
	})
	b.Run("ondemand", func(b *testing.B) {
		ablationShot(b, func(cfg *experiments.ShotConfig) { cfg.OnDemandAlloc = true })
	})
}

// BenchmarkAblationHostStager compares multi-tier concurrent prefetching
// (§4.3.1's T_PF across all tiers) against per-promotion serialized hops.
// The uniform WAIT+reverse shot ends on the SSD-resident tail, where the
// staging overlap matters most.
func BenchmarkAblationHostStager(b *testing.B) {
	wait := func(cfg *experiments.ShotConfig) {
		cfg.Uniform = true
		cfg.WaitForFlush = true
		cfg.Order = rtm.Reverse
		// 96 x 32 MiB = 3 GiB per rank against a 2 GiB host cache:
		// the backward pass ends on an SSD-resident tail.
		cfg.Snapshots = 96
	}
	b.Run("staged", func(b *testing.B) { ablationShot(b, wait) })
	b.Run("serialized", func(b *testing.B) {
		ablationShot(b, func(cfg *experiments.ShotConfig) {
			wait(cfg)
			cfg.NoHostStager = true
		})
	})
}

// --- Microbenchmarks of the core mechanisms ---

// BenchmarkCachebufReserveEvict measures one reserve+evict cycle of the
// gap-aware policy on a fragmented buffer.
func BenchmarkCachebufReserveEvict(b *testing.B) {
	clk := simclock.NewVirtual()
	done := make(chan struct{})
	clk.Go(func() {
		defer close(done)
		o := alwaysEvictable{}
		buf := cachebuf.New(clk, "bench", 1<<30, o)
		// Fragment the buffer with variable-size entries.
		for i := cachebuf.ID(0); i < 64; i++ {
			if _, err := buf.Reserve(i, 1<<20+int64(i)*4096); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := cachebuf.ID(1000 + i)
			if _, err := buf.Reserve(id, 8<<20); err != nil {
				b.Fatal(err)
			}
		}
	})
	<-done
}

type alwaysEvictable struct{}

func (alwaysEvictable) Evictable(cachebuf.ID) bool                        { return true }
func (alwaysEvictable) TimeToEvictable(cachebuf.ID) (time.Duration, bool) { return 0, true }
func (alwaysEvictable) PrefetchDistance(cachebuf.ID) int                  { return 1 }
func (alwaysEvictable) Evicted(cachebuf.ID)                               {}

// BenchmarkFabricTransfer measures the discrete-event cost of one
// contended link transfer.
func BenchmarkFabricTransfer(b *testing.B) {
	clk := simclock.NewVirtual()
	done := make(chan struct{})
	clk.Go(func() {
		defer close(done)
		l := fabric.NewLink(clk, "bench", 25*fabric.GB, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Transfer(128 << 20)
		}
	})
	<-done
}

// BenchmarkRevolveSchedule measures schedule generation for the paper's
// 384-snapshot shots under a tight slot budget.
func BenchmarkRevolveSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		actions, err := revolve.Schedule(384, 8)
		if err != nil {
			b.Fatal(err)
		}
		if len(actions) == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// BenchmarkWavefieldCompress measures snapshot compression of a live
// wavefield.
func BenchmarkWavefieldCompress(b *testing.B) {
	p, err := wavefield.NewPropagator(wavefield.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p.Step()
	}
	snap := p.Snapshot()
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp := wavefield.Compress(snap)
		if len(comp) == 0 {
			b.Fatal("empty compression")
		}
	}
}

// --- Extensions: the paper's future-work items (§6) ---

// BenchmarkExtensionSharedHostCache compares private per-client host
// caches against one node-wide pool (the paper's future-work load
// balancing) on the variable-size workload whose cross-rank size
// disparity motivates it.
func BenchmarkExtensionSharedHostCache(b *testing.B) {
	run := func(b *testing.B, shared bool) {
		for i := 0; i < b.N; i++ {
			cfg := experiments.ShotConfig{
				Uniform: false, WaitForFlush: true, Order: rtm.Reverse,
				Combo:             experiments.Combo{Approach: experiments.Score, Hints: experiments.AllHints},
				SharedHostPerNode: shared,
			}
			benchScale().Apply(&cfg)
			// Widen the cross-rank shot-size disparity well past the
			// private per-client capacity: this is the imbalance the
			// shared pool exists to absorb.
			cfg.Trace.MinAggregate = cfg.HostCache / 2
			cfg.Trace.MaxAggregate = cfg.HostCache * 2
			res, err := experiments.RunShot(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MeanRestoreThroughput()/mb, "restore-MB/s")
			b.ReportMetric(res.TotalIOWait().Seconds(), "io-wait-s")
		}
	}
	b.Run("private", func(b *testing.B) { run(b, false) })
	b.Run("shared", func(b *testing.B) { run(b, true) })
}

// BenchmarkExtensionGPUDirect compares host-staged flushing/prefetching
// against direct GPU↔SSD transfers (the GPUDirect-storage future-work
// item): direct transfers skip the host copy but forfeit the host tier's
// capacity as a cache level.
func BenchmarkExtensionGPUDirect(b *testing.B) {
	run := func(b *testing.B, direct bool) {
		for i := 0; i < b.N; i++ {
			cfg := experiments.ShotConfig{
				Uniform: true, WaitForFlush: true, Order: rtm.Reverse,
				Combo:     experiments.Combo{Approach: experiments.Score, Hints: experiments.AllHints},
				GPUDirect: direct,
			}
			benchScale().Apply(&cfg)
			res, err := experiments.RunShot(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MeanCheckpointThroughput()/mb, "ckpt-MB/s")
			b.ReportMetric(res.MeanRestoreThroughput()/mb, "restore-MB/s")
			b.ReportMetric(res.TotalIOWait().Seconds(), "io-wait-s")
		}
	}
	b.Run("host-staged", func(b *testing.B) { run(b, false) })
	b.Run("gpudirect", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationChunkedPipeline compares monolithic store-and-forward
// transfers against chunked multi-stream pipelining (§4.3) on the
// GPUDirect shot, where every flush and every promotion crosses two hops
// (PCIe + NVMe) and so benefits from chunk-level overlap end to end.
func BenchmarkAblationChunkedPipeline(b *testing.B) {
	run := func(b *testing.B, chunk int64) {
		for i := 0; i < b.N; i++ {
			cfg := experiments.ShotConfig{
				Uniform: true, WaitForFlush: true, Order: rtm.Reverse,
				Combo:     experiments.Combo{Approach: experiments.Score, Hints: experiments.AllHints},
				GPUDirect: true,
			}
			benchScale().Apply(&cfg)
			cfg.ChunkSize = chunk
			res, err := experiments.RunShot(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MeanCheckpointThroughput()/mb, "ckpt-MB/s")
			b.ReportMetric(res.MeanRestoreThroughput()/mb, "restore-MB/s")
			b.ReportMetric(res.TotalIOWait().Seconds(), "io-wait-s")
		}
	}
	b.Run("monolithic", func(b *testing.B) { run(b, 0) })
	b.Run("chunked", func(b *testing.B) { run(b, benchScale().UniformSize/8) })
}
