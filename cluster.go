package score

import (
	"errors"
	"fmt"
	"time"

	"score/internal/coord"
	"score/internal/core"
	"score/internal/faultinject"
	"score/internal/trace"
)

// This file is the cluster failure model's public surface: coordinated
// multi-rank commit tracking, rank/node kill injection, partner-copy
// replication, and the restart ladder they enable. See DESIGN.md §11.

// ErrKilled is returned by every API call on a client whose rank was
// killed by fault injection. Match with errors.Is.
var ErrKilled = core.ErrKilled

// CommitTracker is the job-wide group-commit view (VELOC's coordinated
// checkpointing): a version is globally committed only once every rank
// holds it on a durable tier. Create one per job with Sim.NewCommitTracker
// and attach it to each rank's client with WithCommitTracker; restarts
// then resume from LatestConsistent instead of each rank's private
// newest version. Safe for concurrent use by all ranks.
type CommitTracker struct {
	inner *coord.Tracker
}

// NewCommitTracker builds a group-commit tracker for a job of the given
// rank count and, when sampling is enabled, registers its commit-frontier
// probes (coord.committed_version, coord.commit_lag,
// coord.mean_commit_wait_us, coord.rank_deaths). The tracker runs on the
// simulation clock, so per-version group-commit waits (first rank
// durable → globally committed) are measured; with tracing enabled each
// global commit is also ledgered as a cluster-wide lifecycle event
// (rank -1, kind group-commit).
func (s *Sim) NewCommitTracker(ranks int) (*CommitTracker, error) {
	t, err := coord.New(ranks)
	if err != nil {
		return nil, err
	}
	clk := s.Clock()
	t.SetNow(clk.Now)
	if s.tracer != nil {
		tracer := s.tracer
		t.SetCommitObserver(func(version int64, wait time.Duration) {
			tracer.Lifecycle(-1, version, trace.LGroupCommit, "",
				fmt.Sprintf("wait %v", wait))
		})
	}
	if s.sampler != nil {
		t.RegisterProbes(s.sampler, "")
	}
	return &CommitTracker{inner: t}, nil
}

// CommitWaits returns the per-version group-commit waits: for each
// globally committed version, how long it sat durable on the fastest
// rank before the last rank caught up.
func (t *CommitTracker) CommitWaits() map[int64]time.Duration {
	return t.inner.CommitWaits()
}

// MeanCommitWait averages the group-commit waits over committed versions.
func (t *CommitTracker) MeanCommitWait() time.Duration {
	return t.inner.MeanCommitWait()
}

// Ranks returns the job size the tracker was built for.
func (t *CommitTracker) Ranks() int { return t.inner.Ranks() }

// LatestConsistent returns the newest globally committed version — the
// restart point after a failure. ok is false while no version is durable
// on every rank.
func (t *CommitTracker) LatestConsistent() (int64, bool) {
	return t.inner.LatestConsistent()
}

// CommittedVersions lists every globally committed version, ascending.
func (t *CommitTracker) CommittedVersions() []int64 {
	return t.inner.CommittedVersions()
}

// CommitLag is the distance between the newest version any rank has made
// durable and the newest globally committed version — the work a failure
// right now would roll back.
func (t *CommitTracker) CommitLag() int64 { return t.inner.CommitLag() }

// RankDeaths counts the distinct ranks reported dead.
func (t *CommitTracker) RankDeaths() int64 { return t.inner.RankDeaths() }

// DeadRanks lists the distinct ranks reported dead, ascending.
func (t *CommitTracker) DeadRanks() []int { return t.inner.DeadRanks() }

// MarkDurable reports rank holding version on a durable tier. Clients
// attached with WithCommitTracker report automatically; the manual form
// feeds recovery — a restarted rank replays its RecoveredVersions into a
// fresh tracker to recompute the consistent frontier from ground truth.
func (t *CommitTracker) MarkDurable(rank int, version int64) {
	t.inner.MarkDurable(rank, version)
}

// MarkLost reports that rank no longer holds version durably.
func (t *CommitTracker) MarkLost(rank int, version int64) {
	t.inner.MarkLost(rank, version)
}

// RetractRank withdraws every durability claim rank ever made — the
// full-node-death case where the rank's local SSD died with it. Versions
// it alone held durable stop being committed.
func (t *CommitTracker) RetractRank(rank int) { t.inner.RetractRank(rank) }

// WithCommitTracker attaches the job-wide tracker: the client reports
// every durable/lost fate transition (and its own death) under the given
// rank number. Rank must be unique per client and in [0, tracker.Ranks()).
func WithCommitTracker(t *CommitTracker, rank int) ClientOption {
	return func(c *clientConfig) {
		c.tracker = t
		c.rank = rank
	}
}

// WithPartnerCopy enables partner-copy replication (the classic
// multi-level-checkpointing partner scheme): every checkpoint that lands
// on this rank's local SSD is also staged, best-effort, on the SSD of the
// next node's store at dir, crossing both nodes' NIC links. A restart can
// then restore the version from the partner node even after this node's
// SSD died with it — the restore ladder becomes GPU → host → local SSD →
// partner SSD → PFS. Requires a cluster of at least two nodes; dir names
// the partner store directory (normally <partner node's store root>).
func WithPartnerCopy(dir string) ClientOption {
	return func(c *clientConfig) { c.partnerDir = dir }
}

// Kill simulates this rank dying abruptly at the current simulated time:
// the GPU and host tiers vanish, in-flight flushes resolve as lost, and
// every subsequent API call returns ErrKilled. Survivor clients on the
// same node (and their shared caches and fabric links) keep running.
// Usually driven by an injector kill schedule (KillRank/KillNode) rather
// than called directly.
func (c *Client) Kill() { c.inner.Kill() }

// Killed reports whether this rank has been killed.
func (c *Client) Killed() bool { return c.inner.Killed() }

// KillSpec schedules the death of one rank (or a whole node) at a
// virtual time; attach with FaultInjector.AddKills or build with
// KillRank/KillNode.
type KillSpec = faultinject.KillSpec

// KillRank schedules the rank on (node, gpu) to die at simulated time at.
var KillRank = faultinject.KillRank

// KillNode schedules every rank on node to die at simulated time at —
// modeling full node loss, local SSD included.
var KillNode = faultinject.KillNode

// The partner-copy fault sites (see fault.go for the rest).
const (
	// FaultPartner is the inter-node replication path (both NICs).
	FaultPartner = faultinject.SitePartner
	// FaultPartnerStoreWrite is a durable write to the partner's store.
	FaultPartnerStoreWrite = faultinject.SitePartnerStoreWrite
	// FaultPartnerStoreRead is a durable read from the partner's store.
	FaultPartnerStoreRead = faultinject.SitePartnerStoreRead
)

// Epoch returns the tracker's membership epoch (0 for a job's first
// incarnation; an elastic restart's tracker carries the reshard epoch).
func (t *CommitTracker) Epoch() int { return t.inner.Epoch() }

// Reshard accumulates shard-durability reports during an elastic
// restart: the old job's checkpoint state, sharded per old rank, is
// re-mapped onto a new rank count and the group-commit frontier is
// recomputed from what the surviving stores actually hold. See
// internal/coord for the full semantics.
type Reshard = coord.Reshard

// NewReshard starts an elastic-restart recipe re-sharding a job from
// `from` old ranks onto `to` new ranks at the given new membership epoch
// (>= 1; the old incarnation is epoch 0 unless it was itself resharded).
func NewReshard(from, to, epoch int) (*Reshard, error) {
	return coord.NewReshard(from, to, epoch)
}

// NewCommitTrackerFrom builds the new membership's group-commit tracker
// from a completed reshard recipe — seeded so the adopted shards count
// as durable and LatestConsistent equals the reshard's frontier — and
// wires it to this simulation's clock, sampler, and trace ledger like
// NewCommitTracker does.
func (s *Sim) NewCommitTrackerFrom(r *Reshard) (*CommitTracker, error) {
	t, err := r.Tracker()
	if err != nil {
		return nil, err
	}
	clk := s.Clock()
	t.SetNow(clk.Now)
	if s.tracer != nil {
		tracer := s.tracer
		t.SetCommitObserver(func(version int64, wait time.Duration) {
			tracer.Lifecycle(-1, version, trace.LGroupCommit, "",
				fmt.Sprintf("wait %v", wait))
		})
	}
	if s.sampler != nil {
		t.RegisterProbes(s.sampler, "")
	}
	return &CommitTracker{inner: t}, nil
}

// StoreVersions lists the checkpoint versions a durable store directory
// holds, ascending, without opening a client on it — the scan an elastic
// restart recipe runs per old shard to feed Reshard.MarkShardDurable
// from ground truth.
func StoreVersions(dir string) ([]int64, error) {
	st, _, err := openStore(dir, false)
	if err != nil {
		return nil, err
	}
	return st.IDs(), nil
}

// partnerNode returns the partner for node under the ring scheme.
func partnerNode(node, nodes int) (int, error) {
	if nodes < 2 {
		return 0, errors.New("score: partner copy needs at least two nodes")
	}
	p := (node + 1) % nodes
	if p == node {
		return 0, fmt.Errorf("score: node %d has no distinct partner", node)
	}
	return p, nil
}
