package score_test

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"score"
)

// stragglerSchedules is the number of seeded gray-fault schedules the
// soak runs; raise it for a longer campaign (make chaos-straggler).
var stragglerSchedules = flag.Int("straggler.schedules", 25, "seeded gray schedules for TestStragglerChaosSoak")

// TestStragglerChaosSoak replays seeded random gray-fault schedules —
// slowdowns, jitter, stall windows: faults that never return an error,
// only time — against hedged clients on real stores. The contract is
// strictly stronger than the hard-fault soak's: gray faults destroy no
// data and every window eventually closes, so the flush chain must
// drain cleanly and EVERY restore must come back bit-exact, no matter
// which leg of the hedge race served it or how many stalled flushes
// were rerouted mid-air. The virtual clock panics on deadlock, so a
// hedge coordinator or abandoned stall leg that wedges fails loudly.
func TestStragglerChaosSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const n = 8
	for i := 0; i < *stragglerSchedules; i++ {
		seed := int64(9000 + i)
		t.Run(fmt.Sprintf("schedule-%d", seed), func(t *testing.T) {
			runStragglerSchedule(t, seed, n)
		})
	}
	// Hedge losers and abandoned stall legs run under background
	// waitgroups; give them time to unwind, then check for leaks.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+2 {
		t.Errorf("goroutine leak: %d before soak, %d after", baseline, g)
	}
}

// randomGrayRules derives one gray schedule from a seeded source. Every
// rule is latency-only — no rule here can surface as an operation
// error. The PFS link keeps the hard-fault soak's convention: it is the
// floor of the degradation ladder and the hedge race's deepest leg, so
// it is never degraded below nominal — slowing it would only lengthen
// the run, but keeping it clean makes "the hedge always has a healthy
// replica to race" part of what the soak exercises.
func randomGrayRules(r *rand.Rand) []score.FaultRule {
	ms := func(lo, hi int) time.Duration {
		return time.Duration(lo+r.Intn(hi-lo+1)) * time.Millisecond
	}
	var rules []score.FaultRule
	if r.Float64() < 0.7 { // the headline straggler: SSD path crawls
		after := ms(0, 6)
		scale := 0.02 + 0.1*r.Float64() // 10×–50× slowdown
		if r.Float64() < 0.5 {
			rules = append(rules, score.SlowLink(score.FaultNVMe, scale, after, after+ms(2, 10)))
		} else {
			rules = append(rules, score.SlowLink(score.FaultNVMe, scale, after, after+time.Hour))
		}
	}
	if r.Float64() < 0.5 { // tail noise on the SSD path
		rules = append(rules, score.JitterOps(score.FaultNVMe, ms(1, 4), ms(0, 4), ms(5, 20)))
	}
	if r.Float64() < 0.4 { // bounded stall: ops pinned until the window closes
		after := ms(1, 6)
		rules = append(rules, score.StallWindow(score.FaultNVMe, after, after+ms(1, 6)))
	}
	if r.Float64() < 0.3 { // the partner leg crawls too
		rules = append(rules, score.SlowLink(score.FaultPartner, 0.05+0.1*r.Float64(), ms(0, 4), ms(6, 20)))
	}
	if r.Float64() < 0.3 { // interconnect jitter under everything
		rules = append(rules, score.JitterOps(score.FaultPCIe, ms(1, 2), 0, ms(8, 20)))
	}
	return rules
}

func runStragglerSchedule(t *testing.T, seed int64, n int) {
	ssdDir, pfsDir := t.TempDir(), t.TempDir()
	r := rand.New(rand.NewSource(seed))
	payloads := make([][]byte, n)
	for v := range payloads {
		b := make([]byte, 64*1024)
		r.Read(b)
		payloads[v] = b
	}
	rules := randomGrayRules(r)

	sim, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	inj := sim.NewFaultInjector(seed, rules...)
	sim.Run(func() {
		c, err := sim.NewClient(0, 0,
			score.WithGPUCache(256<<10), score.WithHostCache(1<<20),
			score.WithStore(ssdDir), score.WithPFSStore(pfsDir),
			score.WithHedgedRestores(),
			score.WithFaultInjector(inj))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v := 0; v < n; v++ {
			if err := c.Checkpoint(int64(v), payloads[v]); err != nil {
				t.Fatalf("checkpoint %d failed under a latency-only schedule: %v", v, err)
			}
			c.Compute(time.Millisecond)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatalf("flush chain failed under a latency-only schedule: %v", err)
		}
		if err := c.CheckMetricsInvariants(true); err != nil {
			t.Errorf("metrics invariants after drain: %v", err)
		}
		for v := n - 1; v >= 0; v-- {
			got, err := c.Restart(int64(v))
			if err != nil {
				t.Errorf("restart %d failed — gray faults lose no data: %v", v, err)
				continue
			}
			if !bytes.Equal(got, payloads[v]) {
				t.Errorf("restart %d: hedge race returned wrong bytes", v)
			}
		}
		if err := c.CheckMetricsInvariants(false); err != nil {
			t.Errorf("metrics invariants after hedged restores: %v", err)
		}
		st := c.Stats()
		if st.HedgeWins > st.HedgesLaunched {
			t.Errorf("HedgeWins %d > HedgesLaunched %d", st.HedgeWins, st.HedgesLaunched)
		}
		if st.StallsRerouted > st.StallsDetected {
			t.Errorf("StallsRerouted %d > StallsDetected %d", st.StallsRerouted, st.StallsDetected)
		}
	})
}
