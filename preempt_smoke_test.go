package score_test

import (
	"flag"
	"testing"
	"time"

	"score/internal/experiments"
	"score/internal/report"
)

// preemptOut, when set, makes the smoke test write its drain-throughput
// measurements as a bench-record JSON file (make bench-smoke passes
// BENCH_preempt.json). Distinct from bench.out: both live in this
// package, and duplicate flag names panic at init.
var preemptOut = flag.String("preempt.out", "", "write preemption drain bench records to this JSON file")

// TestPreemptDrainSmoke is the `make bench-smoke` drain gate: a small
// deadline sweep whose hit-rate ladder must be sane — wider grace
// windows never drain worse than narrower ones, the widest window
// always lands everything, and every manifest is complete. The bench
// records track drain throughput (bytes the triage made durable per
// simulated drain second) per grace window.
func TestPreemptDrainSmoke(t *testing.T) {
	cfg := experiments.PreemptConfig{
		Checkpoints: 6,
		Size:        256 << 20,
		Interval:    time.Millisecond,
		Windows:     []time.Duration{125 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second},
		Runs:        2,
	}
	res, err := experiments.Preemption(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(cfg.Windows) {
		t.Fatalf("sweep returned %d cells for %d windows", len(res.Cells), len(cfg.Windows))
	}
	if !res.SampleManifest.Complete() {
		t.Fatalf("sample manifest incomplete: %s", res.SampleManifest)
	}
	prev := -1.0
	for _, cell := range res.Cells {
		if cell.Runs != cfg.Runs {
			t.Errorf("window %v ran %d/%d runs", cell.Window, cell.Runs, cfg.Runs)
		}
		if cell.DurableBytes == 0 {
			t.Errorf("window %v made nothing durable", cell.Window)
		}
		if hr := cell.HitRate(); hr < prev {
			t.Errorf("hit rate fell from %.2f to %.2f as the window widened to %v", prev, hr, cell.Window)
		} else {
			prev = hr
		}
		t.Logf("grace %-8v hit rate %.2f  drained %.2f GB  abandoned %.2f GB",
			cell.Window, cell.HitRate(), float64(cell.DrainedBytes)/1e9, float64(cell.AbandonedBytes)/1e9)
	}
	widest := res.Cells[len(res.Cells)-1]
	if widest.HitRate() != 1 {
		t.Errorf("widest window %v hit rate %.2f, want 1.0 — the ladder cannot drain %d MB in %v",
			widest.Window, widest.HitRate(), cfg.Size>>20*int64(cfg.Checkpoints), widest.Window)
	}
	if widest.AbandonedBytes != 0 {
		t.Errorf("widest window abandoned %d bytes despite hitting its deadline", widest.AbandonedBytes)
	}

	if *preemptOut != "" {
		var records []report.BenchRecord
		for _, cell := range res.Cells {
			rec := report.BenchRecord{
				Name:       "preempt/grace-" + cell.Window.String(),
				BytesMoved: cell.DrainedBytes,
				// OverlapRatio carries the deadline-hit rate: same 0..1
				// shape, tracked per window across commits.
				OverlapRatio: cell.HitRate(),
			}
			if cell.Runs > 0 {
				rec.NsPerOp = float64(cell.DrainTime.Nanoseconds()) / float64(cell.Runs)
			}
			records = append(records, rec)
		}
		if err := report.WriteBenchFile(*preemptOut, records); err != nil {
			t.Fatalf("writing %s: %v", *preemptOut, err)
		}
		t.Logf("wrote %d bench records to %s", len(records), *preemptOut)
	}
}
