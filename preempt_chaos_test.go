package score_test

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"score"
)

// preemptSchedules is the number of seeded preemption chaos schedules
// the drain soak runs; raise it for a longer campaign (make
// chaos-preempt).
var preemptSchedules = flag.Int("preempt.schedules", 25, "seeded schedules for TestPreemptChaosSoak")

// TestPreemptChaosSoak replays seeded schedules that land a preemption
// notice on a rank while random fault rules are active inside the drain
// window. The contract: every schedule ends with a complete drain
// manifest (no version left undecided, every abandonment carries an
// explicit reason — never a wedge, never a flush in flight past the
// reclaim), and a clean second process restores every version the
// manifest called durable bit-exactly. Goroutines must not leak across
// schedules.
func TestPreemptChaosSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < *preemptSchedules; i++ {
		seed := int64(4000 + i)
		t.Run(fmt.Sprintf("schedule-%d", seed), func(t *testing.T) {
			runPreemptChaosSchedule(t, seed)
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+2 {
		t.Errorf("goroutine leak: %d before soak, %d after", baseline, g)
	}
}

// drainWindowRules derives fault rules aimed at the drain window itself:
// the SSD link or store dying exactly while the triage is trying to use
// it. The PFS tier, when present, is never faulted so abandonments stay
// attributable to the schedule, not to a floor-less ladder.
func drainWindowRules(r *rand.Rand, noticeAt, grace time.Duration) []score.FaultRule {
	var rules []score.FaultRule
	if r.Float64() < 0.5 { // SSD outage overlapping the window
		start := noticeAt - time.Duration(r.Int63n(int64(time.Millisecond)))
		if start < 0 {
			start = 0
		}
		rules = append(rules, score.FailWindow(score.FaultNVMe, start, noticeAt+grace))
	}
	if r.Float64() < 0.4 {
		rules = append(rules, score.FailProb(score.FaultNVMe, 0.1+0.3*r.Float64()))
	}
	if r.Float64() < 0.4 {
		rules = append(rules, score.FailNth(score.FaultStoreWrite, int64(1+r.Intn(6))))
	}
	if r.Float64() < 0.4 { // PCIe slowdown: the D2H triage legs crawl
		rules = append(rules, score.SlowLink(score.FaultPCIe, 0.1+0.2*r.Float64(), 0, noticeAt+grace))
	}
	if r.Float64() < 0.3 {
		rules = append(rules, score.DelayOps(score.FaultHostAlloc, time.Duration(1+r.Intn(3))*time.Millisecond, 0, 0))
	}
	return rules
}

func runPreemptChaosSchedule(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed))
	ssdDir := t.TempDir()
	pfsDir := ""
	if r.Float64() < 0.5 { // half the schedules have no PFS floor: the
		pfsDir = t.TempDir() // drain must fail open, not hunt for one
	}
	const n = 6
	payloads := make([][]byte, n)
	for v := range payloads {
		b := make([]byte, 128*1024)
		r.Read(b)
		payloads[v] = b
	}
	noticeAt := time.Duration(1+r.Intn(8)) * time.Millisecond
	grace := 500*time.Microsecond + time.Duration(r.Int63n(int64(20*time.Millisecond)))
	rules := drainWindowRules(r, noticeAt, grace)
	asyncHost := r.Float64() < 0.5

	// Life 1: write until the notice (or the reclaim) stops the rank,
	// then sleep past the kill and read the manifest the drain retained.
	sim1, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	inj := sim1.NewFaultInjector(seed, rules...)
	inj.AddPreempts(score.PreemptRank(0, 0, noticeAt, grace))
	var m score.DrainManifest
	var ok bool
	sim1.Run(func() {
		opts := []score.ClientOption{
			score.WithGPUCache(512 << 10), score.WithHostCache(1 << 20),
			score.WithStore(ssdDir), score.WithFaultInjector(inj),
		}
		if pfsDir != "" {
			opts = append(opts, score.WithPFSStore(pfsDir))
		}
		if asyncHost {
			opts = append(opts, score.WithAsyncHostInit())
		}
		c, err := sim1.NewClient(0, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v := 0; v < n; v++ {
			if err := c.Checkpoint(int64(v), payloads[v]); err != nil {
				// Only the preemption may stop the writer: the drain gate
				// or the reclaim itself. Anything else is a wedge.
				if !errors.Is(err, score.ErrDraining) && !errors.Is(err, score.ErrKilled) {
					t.Fatalf("checkpoint %d failed outside the preemption path: %v", v, err)
				}
				break
			}
			c.Compute(time.Millisecond)
		}
		horizon := noticeAt + grace + 500*time.Millisecond
		if d := horizon - sim1.Clock().Now(); d > 0 {
			sim1.Clock().Sleep(d)
		}
		m, ok = c.DrainManifest()
		if err := c.CheckMetricsInvariants(false); err != nil {
			t.Errorf("metrics invariants after drain: %v", err)
		}
	})
	if !ok {
		t.Fatal("preemption notice produced no drain manifest")
	}
	if !m.Complete() {
		t.Fatalf("incomplete drain manifest: %s", m)
	}
	if m.DeadlineMet && (m.Finished > m.Deadline || m.Count(score.DrainAbandoned) != 0) {
		t.Fatalf("DeadlineMet but finished %v > deadline %v or %d abandoned",
			m.Finished, m.Deadline, m.Count(score.DrainAbandoned))
	}
	durable := map[int64][]byte{}
	for _, e := range m.Entries {
		switch e.Outcome {
		case score.DrainAlreadyDurable, score.DrainFlushed:
			if e.Tier == "" {
				t.Errorf("version %d durable with no tier named", e.Version)
			}
			durable[e.Version] = payloads[e.Version]
		case score.DrainAbandoned:
			if e.Reason == "" {
				t.Errorf("version %d abandoned with no reason", e.Version)
			}
		}
	}

	// Life 2: a clean process on the surviving stores. Every version the
	// manifest called durable must come back bit-exact; anything else
	// that happens to be recoverable must be bit-exact too — an
	// abandoned version may only be lost, never wrong.
	sim2, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim2.Run(func() {
		opts := []score.ClientOption{
			score.WithGPUCache(512 << 10), score.WithHostCache(1 << 20),
			score.WithStore(ssdDir), score.WithScrubOnOpen(),
		}
		if pfsDir != "" {
			opts = append(opts, score.WithPFSStore(pfsDir))
		}
		c, err := sim2.NewClient(0, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		recovered := map[int64]bool{}
		for _, v := range c.RecoveredVersions() {
			recovered[v] = true
			got, err := c.Restart(v)
			if err != nil {
				t.Errorf("restart %d of a recovered version: %v", v, err)
				continue
			}
			if !bytes.Equal(got, payloads[v]) {
				t.Errorf("restart %d: recovered bytes not bit-exact", v)
			}
		}
		for v := range durable {
			if !recovered[v] {
				t.Errorf("manifest called version %d durable but the clean process cannot see it", v)
			}
		}
		if err := c.CheckMetricsInvariants(true); err != nil {
			t.Errorf("metrics invariants in recovery process: %v", err)
		}
	})
}

// TestMigrateChaosSoak drives live migrations through seeded fault
// schedules at the migrate copy site. Contract: MigrateRank either
// validates the cutover or returns a definitive error (injected fault
// or ErrMigrationIncomplete — never a silently divergent successor); a
// later fault-free incremental migration always converges; and the
// successor then restores the full corpus bit-exactly.
func TestMigrateChaosSoak(t *testing.T) {
	schedules := (*preemptSchedules + 1) / 2
	for i := 0; i < schedules; i++ {
		seed := int64(6000 + i)
		t.Run(fmt.Sprintf("schedule-%d", seed), func(t *testing.T) {
			runMigrateChaosSchedule(t, seed)
		})
	}
}

func runMigrateChaosSchedule(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed))
	srcDir, dstDir := t.TempDir(), t.TempDir()
	const n = 6
	payloads := make([][]byte, n)
	for v := range payloads {
		b := make([]byte, 128*1024)
		r.Read(b)
		payloads[v] = b
	}
	// Only the migrate site is faulted: the source corpus must be
	// cleanly durable so divergence is attributable to the migration.
	var rules []score.FaultRule
	switch r.Intn(3) {
	case 0:
		rules = append(rules, score.FailProb(score.FaultMigrate, 0.3+0.4*r.Float64()))
	case 1:
		rules = append(rules, score.FailWindow(score.FaultMigrate, 0, time.Duration(1+r.Intn(50))*time.Millisecond))
	default:
		rules = append(rules, score.FailNth(score.FaultMigrate, int64(1+r.Intn(4))))
	}

	// Life 1: build the corpus, then migrate under the fault schedule.
	sim1, err := score.NewSim(score.WithNodes(2), score.WithGPUsPerNode(1))
	if err != nil {
		t.Fatal(err)
	}
	inj := sim1.NewFaultInjector(seed, rules...)
	sim1.Run(func() {
		c, err := sim1.NewClient(0, 0,
			score.WithGPUCache(512<<10), score.WithHostCache(1<<20),
			score.WithStore(srcDir), score.WithFaultInjector(inj))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v := 0; v < n; v++ {
			if err := c.Checkpoint(int64(v), payloads[v]); err != nil {
				t.Fatalf("checkpoint %d: %v", v, err)
			}
			c.Compute(time.Millisecond)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatalf("source corpus did not flush cleanly: %v", err)
		}
		rep, err := sim1.MigrateRank(c, 1, dstDir)
		if err != nil {
			if !errors.Is(err, score.ErrFaultInjected) && !errors.Is(err, score.ErrMigrationIncomplete) {
				t.Fatalf("migration failed without a definitive cause: %v", err)
			}
		} else if !rep.Validated {
			t.Fatalf("migration returned success without validation: %+v", rep)
		}
	})

	// Life 2: a fault-free incremental migration from the recovered
	// source must converge — whatever the chaos run already landed on
	// the successor is skipped, the rest is copied and validated.
	sim2, err := score.NewSim(score.WithNodes(2), score.WithGPUsPerNode(1))
	if err != nil {
		t.Fatal(err)
	}
	sim2.Run(func() {
		c, err := sim2.NewClient(0, 0,
			score.WithGPUCache(512<<10), score.WithHostCache(1<<20),
			score.WithStore(srcDir))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rep, err := sim2.MigrateRank(c, 1, dstDir)
		if err != nil {
			t.Fatalf("fault-free catch-up migration failed: %v", err)
		}
		if !rep.Validated {
			t.Fatalf("catch-up migration not validated: %+v", rep)
		}
	})

	// Life 3: the successor adopts its store and restores everything.
	sim3, err := score.NewSim(score.WithNodes(2), score.WithGPUsPerNode(1))
	if err != nil {
		t.Fatal(err)
	}
	sim3.Run(func() {
		c, err := sim3.NewClient(1, 0,
			score.WithGPUCache(512<<10), score.WithHostCache(1<<20),
			score.WithStore(dstDir), score.WithScrubOnOpen())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if got := c.RecoveredVersions(); len(got) != n {
			t.Fatalf("successor recovered %d/%d versions", len(got), n)
		}
		for v := 0; v < n; v++ {
			got, err := c.Restart(int64(v))
			if err != nil {
				t.Fatalf("successor restart %d: %v", v, err)
			}
			if !bytes.Equal(got, payloads[v]) {
				t.Fatalf("successor restart %d: not bit-exact", v)
			}
		}
	})
}
