//go:build race

package score_test

// raceEnabled reports that this test binary was built with the race
// detector, whose ~20-50× slowdown and shadow-memory allocations make
// wall-clock and allocs/op gates meaningless.
const raceEnabled = true
