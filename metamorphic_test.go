package score_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"score"
	"score/internal/metrics"
)

// TestChunkedMonolithicMetamorphic is the metamorphic property of chunked
// transfer pipelining: splitting every multi-hop transfer into chunks is a
// latency optimization, never a semantic one. For each seeded
// configuration the same workload runs twice — ChunkSize=0 (monolithic)
// and ChunkSize>0 (pipelined) — and the two runs must agree on every byte
// that moved (checkpointed, accepted, durable, restored) and on the final
// store contents, file for file, bit for bit.
func TestChunkedMonolithicMetamorphic(t *testing.T) {
	const configs = 20
	for i := 0; i < configs; i++ {
		seed := int64(4000 + i)
		t.Run(fmt.Sprintf("config-%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			n := 4 + r.Intn(8)
			payloads := make([][]byte, n)
			for v := range payloads {
				b := make([]byte, (16+r.Intn(112))<<10)
				r.Read(b)
				payloads[v] = b
			}
			gpuCache := int64(128+r.Intn(256)) << 10
			hostCache := int64(512+r.Intn(1024)) << 10
			chunk := int64(8+r.Intn(56)) << 10
			gpuDirect := r.Intn(2) == 0

			mono := runMetamorphicWorkload(t, payloads, gpuCache, hostCache, 0, gpuDirect)
			chunked := runMetamorphicWorkload(t, payloads, gpuCache, hostCache, chunk, gpuDirect)

			type byteCounter struct {
				name string
				get  func(metrics.Summary) int64
			}
			for _, c := range []byteCounter{
				{"checkpointed", func(s metrics.Summary) int64 { return s.CheckpointBytes }},
				{"accepted", func(s metrics.Summary) int64 { return s.AcceptedBytes }},
				{"durable", func(s metrics.Summary) int64 { return s.DurableBytes }},
				{"discarded", func(s metrics.Summary) int64 { return s.DiscardedBytes }},
				{"lost", func(s metrics.Summary) int64 { return s.LostBytes }},
				{"restored", func(s metrics.Summary) int64 { return s.RestoreBytes }},
			} {
				if m, ch := c.get(mono.summary), c.get(chunked.summary); m != ch {
					t.Errorf("%s bytes diverge: monolithic %d, chunked %d", c.name, m, ch)
				}
			}
			// The chunked run's per-hop conservation: every hop of every
			// completed stream moved exactly the payload size.
			if chunked.summary.PipelinedHopBytes != chunked.summary.PipelinedHopBytesWant {
				t.Errorf("chunked per-hop bytes %d != expected %d",
					chunked.summary.PipelinedHopBytes, chunked.summary.PipelinedHopBytesWant)
			}
			if mono.summary.PipelinedStreams != 0 {
				t.Errorf("monolithic run recorded %d pipelined streams", mono.summary.PipelinedStreams)
			}

			if !mono.ssd.equal(chunked.ssd) {
				t.Errorf("SSD store contents diverge:\n  monolithic: %v\n  chunked:    %v", mono.ssd, chunked.ssd)
			}
			if !mono.pfs.equal(chunked.pfs) {
				t.Errorf("PFS store contents diverge:\n  monolithic: %v\n  chunked:    %v", mono.pfs, chunked.pfs)
			}
		})
	}
}

type metamorphicResult struct {
	summary  metrics.Summary
	ssd, pfs storeDigest
}

// runMetamorphicWorkload checkpoints the payloads, drains the flush
// chain, restores everything backward bit-exact, and returns the metrics
// summary plus content digests of both stores.
func runMetamorphicWorkload(t *testing.T, payloads [][]byte, gpuCache, hostCache, chunk int64, gpuDirect bool) metamorphicResult {
	t.Helper()
	ssdDir, pfsDir := t.TempDir(), t.TempDir()
	sim, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	var res metamorphicResult
	sim.Run(func() {
		opts := []score.ClientOption{
			score.WithGPUCache(gpuCache), score.WithHostCache(hostCache),
			score.WithStore(ssdDir), score.WithPFSStore(pfsDir),
		}
		if chunk > 0 {
			opts = append(opts, score.WithChunkSize(chunk))
		}
		if gpuDirect {
			opts = append(opts, score.WithGPUDirect())
		}
		c, err := sim.NewClient(0, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v, p := range payloads {
			if err := c.Checkpoint(int64(v), p); err != nil {
				t.Fatalf("chunk=%d: checkpoint %d: %v", chunk, v, err)
			}
			c.Compute(500 * time.Microsecond)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatalf("chunk=%d: WaitFlush: %v", chunk, err)
		}
		for v := len(payloads) - 1; v >= 0; v-- {
			got, err := c.Restart(int64(v))
			if err != nil {
				t.Fatalf("chunk=%d: restart %d: %v", chunk, v, err)
			}
			if !bytes.Equal(got, payloads[v]) {
				t.Fatalf("chunk=%d: restart %d not bit-exact", chunk, v)
			}
		}
		if err := c.CheckMetricsInvariants(false); err != nil {
			t.Errorf("chunk=%d: metrics invariants: %v", chunk, err)
		}
		res.summary = c.MetricsSummary()
	})
	res.ssd = digestDir(t, ssdDir)
	res.pfs = digestDir(t, pfsDir)
	return res
}

// storeDigest maps store file basenames to content hashes.
type storeDigest map[string]string

func (d storeDigest) equal(other storeDigest) bool {
	if len(d) != len(other) {
		return false
	}
	for name, sum := range d {
		if other[name] != sum {
			return false
		}
	}
	return true
}

func (d storeDigest) String() string {
	names := make([]string, 0, len(d))
	for name := range d {
		names = append(names, name)
	}
	sort.Strings(names)
	var b bytes.Buffer
	for _, name := range names {
		fmt.Fprintf(&b, "%s=%s ", name, d[name][:8])
	}
	return b.String()
}

func digestDir(t *testing.T, dir string) storeDigest {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	d := storeDigest{}
	for _, f := range files {
		if fi, err := os.Stat(f); err != nil || fi.IsDir() {
			continue
		}
		buf, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		d[filepath.Base(f)] = fmt.Sprintf("%x", sha256.Sum256(buf))
	}
	return d
}
