// Package score is a Go reproduction of "GPU-Enabled Asynchronous
// Multi-level Checkpoint Caching and Prefetching" (Maurya et al.,
// HPDC '23): a checkpointing runtime for HPC applications that write and
// read long histories of checkpoints at high frequency, as in adjoint
// computations (reverse time migration, quantum optimal control),
// reproducibility pipelines, and producer–consumer workflows.
//
// The runtime treats GPU memory as a first-class cache tier: checkpoints
// block only for the copy into a pre-allocated device cache, then flush
// asynchronously down the hierarchy (GPU → pinned host → node-local SSD →
// parallel file system). Applications declare the order in which they
// will read checkpoints back (prefetch hints); a background prefetcher
// promotes them up the hierarchy ahead of the reads, and a gap-aware
// score-based eviction policy decides, across the interleaving of flushes
// and prefetches, which cached checkpoints to sacrifice.
//
// Because Go cannot drive real CUDA devices, the hardware is simulated: a
// deterministic discrete-event clock, a max-min fair-sharing interconnect
// fabric modeling the DGX-A100 topology, and a GPU model with HBM
// accounting and allocation costs. The simulation exercises the complete
// runtime — life-cycle state machine, eviction algorithm, flusher and
// prefetcher tasks, multi-process contention — with full paper-scale
// workloads in milliseconds of wall time.
//
// # Quick start
//
//	sim, err := score.NewSim()                   // one DGX-A100-like node
//	if err != nil { ... }
//	sim.Run(func() {
//	    c, err := sim.NewClient(0, 0)            // node 0, GPU 0
//	    if err != nil { ... }
//	    defer c.Close()
//
//	    for v := int64(9); v >= 0; v-- {         // reverse restore order
//	        c.PrefetchEnqueue(v)
//	    }
//	    for v := int64(0); v < 10; v++ {         // forward pass
//	        c.Checkpoint(v, data[v])
//	        c.Compute(10 * time.Millisecond)
//	    }
//	    c.PrefetchStart()
//	    for v := int64(9); v >= 0; v-- {         // backward pass
//	        restored, _ := c.Restart(v)
//	        ...
//	    }
//	})
//
// The full evaluation of the paper (Figures 4–9, Table 1) is regenerated
// by cmd/ckptbench and by the benchmarks in bench_test.go.
package score
