// Determinism regression tests for the gray-failure machinery. The
// contract (DESIGN.md §16): with hedging off and no gray faults
// injected, the health estimator is pure observation — the runtime's
// ledgers, metrics, store bytes, and timing are byte-identical to a
// build that never heard of hedging; and the hedge/stall timer paths
// themselves are observation-equivalent across the wheel and heap timer
// backends, even mid-race.
package score_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"score"
	"score/internal/core"
	"score/internal/device"
	"score/internal/fabric"
	"score/internal/metrics"
	"score/internal/payload"
	"score/internal/simclock"
)

// grayRunDigest runs a fixed write/flush/restore scenario through the
// public API and digests everything observable: the merged metrics
// summary, the final virtual time, per-version restored bytes, and a
// hash of every durable store file.
func grayRunDigest(t *testing.T, attach func(*score.Sim) []score.ClientOption) string {
	t.Helper()
	ssdDir, pfsDir := t.TempDir(), t.TempDir()
	const n = 8
	payloads := make([][]byte, n)
	for v := range payloads {
		payloads[v] = bytes.Repeat([]byte{byte(0x21 * (v + 1))}, 128*1024)
	}

	sim, err := score.NewSim(score.WithNodes(1), score.WithGPUsPerNode(1))
	if err != nil {
		t.Fatal(err)
	}
	opts := []score.ClientOption{
		score.WithGPUCache(256 << 10), score.WithHostCache(1 << 20),
		score.WithStore(ssdDir), score.WithPFSStore(pfsDir),
	}
	if attach != nil {
		opts = append(opts, attach(sim)...)
	}

	var sb bytes.Buffer
	sim.Run(func() {
		c, err := sim.NewClient(0, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v := 0; v < n; v++ {
			if err := c.Checkpoint(int64(v), payloads[v]); err != nil {
				t.Fatalf("checkpoint %d: %v", v, err)
			}
			c.Compute(time.Millisecond)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatalf("wait flush: %v", err)
		}
		for v := n - 1; v >= 0; v-- {
			got, err := c.Restart(int64(v))
			if err != nil {
				t.Fatalf("restart %d: %v", v, err)
			}
			fmt.Fprintf(&sb, "restore %d sha=%x\n", v, sha256.Sum256(got))
			c.Compute(time.Millisecond)
		}
		sb.WriteString(canonicalSummary(t, c.MetricsSummary()))
		sb.WriteByte('\n')
	})
	fmt.Fprintf(&sb, "final=%v\n", sim.Clock().Now())

	for _, dir := range []string{ssdDir, pfsDir} {
		files, err := filepath.Glob(filepath.Join(dir, "*"))
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(files)
		for _, f := range files {
			buf, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&sb, "store %s sha=%x\n", filepath.Base(f), sha256.Sum256(buf))
		}
	}
	return sb.String()
}

// TestGrayMachineryOffIsByteIdentical: attaching a fault injector whose
// gray schedule is empty — or whose jitter/stall windows never open —
// must leave every observable byte identical to the seed run with no
// injector at all. This is the acceptance bound for the health
// estimator's pure-observation claim: its bookkeeping on the hot paths
// must never perturb scheduling.
func TestGrayMachineryOffIsByteIdentical(t *testing.T) {
	seed := grayRunDigest(t, nil)

	empty := grayRunDigest(t, func(s *score.Sim) []score.ClientOption {
		return []score.ClientOption{score.WithFaultInjector(s.NewFaultInjector(42))}
	})
	if empty != seed {
		t.Errorf("empty fault schedule diverged from the seed run:\n--- seed\n%s\n--- empty schedule\n%s", seed, empty)
	}

	// Gray rules present but dormant: windows entirely beyond the run's
	// horizon. Rule evaluation happens on every transfer, so this pins
	// that a non-matching gray rule draws no randomness and adds no time.
	far := 10 * time.Hour
	dormant := grayRunDigest(t, func(s *score.Sim) []score.ClientOption {
		inj := s.NewFaultInjector(42,
			score.JitterOps(score.FaultNVMe, time.Millisecond, far, far+time.Hour),
			score.StallWindow(score.FaultPFS, far, far+time.Hour),
			score.SlowLink(score.FaultPCIe, 0.5, far, far+time.Hour))
		return []score.ClientOption{score.WithFaultInjector(inj)}
	})
	if dormant != seed {
		t.Errorf("dormant gray rules diverged from the seed run:\n--- seed\n%s\n--- dormant\n%s", seed, dormant)
	}
}

// grayCoreFingerprint runs the core client directly on a chosen timer
// backend: healthy flush phase, then a raw interceptor silently drops
// the NVMe link to 5% bandwidth (a gray fault with no injector in the
// loop), then a deep restore pass. With hedge set, the restores race
// the PFS replica via WaitTimeout-armed deadlines — the exact timer
// paths whose wheel/heap equivalence this fingerprints.
func grayCoreFingerprint(t *testing.T, hedge bool, opts ...simclock.VirtualOption) string {
	t.Helper()
	const (
		n    = 10
		size = int64(32 << 20)
	)
	clk := simclock.NewVirtual(opts...)
	nodeCfg := fabric.DGXA100()
	nodeCfg.GPUs = 1
	cluster, err := fabric.NewCluster(clk, 1, nodeCfg)
	if err != nil {
		t.Fatal(err)
	}
	node := cluster.Nodes[0]
	d2d, pcie := node.GPULinks(0)
	gpu := device.NewGPU(clk, 0, 40*fabric.GB, d2d, pcie, device.DefaultAllocCosts())

	var sum metrics.Summary
	clk.Run(func() {
		c, err := core.New(core.Params{
			Clock: clk, GPU: gpu, NVMe: node.NVMe, PFS: node.PFS,
			GPUCacheSize: 4 * size, HostCacheSize: 4 * size,
			AsyncHostInit: true, PersistToPFS: true, FlushStreams: 2,
			Hedge: hedge,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v := int64(0); v < n; v++ {
			if err := c.Checkpoint(core.ID(v), payload.NewVirtual(size)); err != nil {
				t.Fatalf("checkpoint %d: %v", v, err)
			}
			clk.Sleep(2 * time.Millisecond)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatalf("wait flush: %v", err)
		}
		// The gray fault: from here on the NVMe link silently runs at 5%.
		cut := clk.Now()
		node.NVMe.SetInterceptor(func(string, int64) fabric.FaultDecision {
			if clk.Now() >= cut {
				return fabric.FaultDecision{BandwidthScale: 0.05}
			}
			return fabric.FaultDecision{}
		})
		for v := int64(n) - 1; v >= 0; v-- {
			if _, err := c.Restore(core.ID(v)); err != nil {
				t.Fatalf("restore %d: %v", v, err)
			}
			clk.Sleep(2 * time.Millisecond)
		}
		sum = c.Metrics().Snapshot()
	})

	return fmt.Sprintf("final=%v\n%s\n", clk.Now(), canonicalSummary(t, sum))
}

// canonicalSummary marshals a metrics summary with two same-instant tie
// artifacts normalized — both predate the gray machinery and are outside
// the engine's determinism guarantee (virtual-time observables are
// byte-stable; goroutine wake order within one instant is not):
// critical-path records completing in the same window append in wake
// order, so they are sorted by (op, version); and a reservation racing a
// same-instant release may or may not record a zero-duration
// eviction_wait entry, so histograms keep only their duration sums
// (counters like HedgesLaunched already pin the event counts strictly).
func canonicalSummary(t *testing.T, sum metrics.Summary) string {
	t.Helper()
	j, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(j, &m); err != nil {
		t.Fatal(err)
	}
	if cps, ok := m["CritPaths"].([]any); ok {
		sort.Slice(cps, func(a, b int) bool {
			ma, mb := cps[a].(map[string]any), cps[b].(map[string]any)
			if ma["Op"] != mb["Op"] {
				return ma["Op"].(string) < mb["Op"].(string)
			}
			return ma["Version"].(float64) < mb["Version"].(float64)
		})
	}
	if hists, ok := m["Histograms"].(map[string]any); ok {
		for name, h := range hists {
			hists[name] = map[string]any{"sum": h.(map[string]any)["sum"]}
		}
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestGrayHedgeWheelVsHeap: the hedge race's deadline timers must be
// observation-equivalent across the wheel and heap timer backends —
// with hedging off (pure estimator bookkeeping) and on (WaitTimeout
// deadlines genuinely firing and launching hedge legs mid-straggler).
func TestGrayHedgeWheelVsHeap(t *testing.T) {
	for _, hedge := range []bool{false, true} {
		name := map[bool]string{false: "unhedged", true: "hedged"}[hedge]
		t.Run(name, func(t *testing.T) {
			wheel := grayCoreFingerprint(t, hedge)
			heap := grayCoreFingerprint(t, hedge, simclock.WithHeapTimers())
			if wheel != heap {
				t.Fatalf("wheel and heap timer backends diverged:\nwheel:\n%s\nheap:\n%s", wheel, heap)
			}
		})
	}
}

// TestGrayHedgeRepeatable: two hedged runs of the straggler scenario on
// the default backend are byte-identical — the race coordinator and
// background loser legs introduce no scheduling nondeterminism.
func TestGrayHedgeRepeatable(t *testing.T) {
	a := grayCoreFingerprint(t, true)
	b := grayCoreFingerprint(t, true)
	if a != b {
		t.Fatalf("two hedged runs diverged:\n%s\nvs\n%s", a, b)
	}
}
