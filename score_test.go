package score_test

import (
	"bytes"
	"testing"
	"time"

	"score"
)

func TestQuickstartRoundTrip(t *testing.T) {
	sim, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(func() {
		c, err := sim.NewClient(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()

		const n = 8
		data := make([][]byte, n)
		for v := int64(n - 1); v >= 0; v-- {
			c.PrefetchEnqueue(v)
		}
		for v := 0; v < n; v++ {
			data[v] = bytes.Repeat([]byte{byte(v + 1)}, 4096)
			if err := c.Checkpoint(int64(v), data[v]); err != nil {
				t.Fatal(err)
			}
			c.Compute(10 * time.Millisecond)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		c.PrefetchStart()
		for v := n - 1; v >= 0; v-- {
			got, err := c.Restart(int64(v))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data[v]) {
				t.Fatalf("version %d: data mismatch", v)
			}
			c.Compute(10 * time.Millisecond)
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.CheckpointOps != n || st.RestoreOps != n {
			t.Errorf("ops = %d/%d, want %d/%d", st.CheckpointOps, st.RestoreOps, n, n)
		}
		if st.CheckpointThroughput <= 0 || st.RestoreThroughput <= 0 {
			t.Error("throughputs should be positive")
		}
	})
}

func TestVirtualCheckpoints(t *testing.T) {
	sim, err := score.NewSim(score.WithGPUsPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(func() {
		c, err := sim.NewClient(0, 1,
			score.WithGPUCache(64<<20),
			score.WithHostCache(256<<20),
			score.WithDiscardAfterRestore(),
			score.WithAutoPrefetch())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v := int64(0); v < 16; v++ {
			if err := c.CheckpointVirtual(v, 16<<20); err != nil {
				t.Fatal(err)
			}
		}
		if size, err := c.RestartSize(3); err != nil || size != 16<<20 {
			t.Errorf("RestartSize = %d, %v", size, err)
		}
		for v := int64(15); v >= 0; v-- {
			if _, err := c.Restart(v); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestMultiGPUContention(t *testing.T) {
	sim, err := score.NewSim(score.WithGPUsPerNode(4))
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(func() {
		clk := sim.Clock()
		wg := sim.NewWaitGroup()
		errs := make([]error, 4)
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				c, err := sim.NewClient(0, g,
					score.WithGPUCache(32<<20), score.WithHostCache(128<<20))
				if err != nil {
					errs[g] = err
					return
				}
				defer c.Close()
				for v := int64(0); v < 8; v++ {
					if err := c.CheckpointVirtual(v, 8<<20); err != nil {
						errs[g] = err
						return
					}
					clk.Sleep(time.Millisecond)
				}
				errs[g] = c.WaitFlush()
			})
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				t.Errorf("gpu %d: %v", g, err)
			}
		}
	})
}

func TestSimOptionsValidation(t *testing.T) {
	if _, err := score.NewSim(score.WithNodes(0)); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := score.NewSim(score.WithHBM(-1)); err == nil {
		t.Error("negative HBM accepted")
	}
	sim, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	if sim.Nodes() != 1 || sim.GPUsPerNode() != 8 {
		t.Errorf("defaults: %d nodes, %d GPUs", sim.Nodes(), sim.GPUsPerNode())
	}
	sim.Run(func() {
		if _, err := sim.NewClient(5, 0); err == nil {
			t.Error("out-of-range node accepted")
		}
		if _, err := sim.NewClient(0, 99); err == nil {
			t.Error("out-of-range GPU accepted")
		}
	})
}

func TestRealTimeClock(t *testing.T) {
	sim, err := score.NewSim(
		score.WithRealTime(1e6), // one simulated second per wall µs
		score.WithGPUsPerNode(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(func() {
		c, err := sim.NewClient(0, 0,
			score.WithGPUCache(16<<20), score.WithHostCache(64<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.CheckpointVirtual(0, 4<<20); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Restart(0); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCustomBandwidths(t *testing.T) {
	sim, err := score.NewSim(
		score.WithGPUsPerNode(1),
		score.WithNodeBandwidths(1<<34, 1<<32, 1<<31, 1<<30),
	)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(func() {
		c, err := sim.NewClient(0, 0,
			score.WithGPUCache(16<<20), score.WithHostCache(64<<20),
			score.WithPersistToPFS(), score.WithAsyncHostInit())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		start := sim.Clock().Now()
		if err := c.CheckpointVirtual(0, 8<<20); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		if sim.Clock().Now() == start {
			t.Error("no simulated time passed for the flush chain")
		}
	})
}

func TestWithEvictionPolicy(t *testing.T) {
	sim, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(func() {
		c, err := sim.NewClient(0, 0, score.WithEvictionPolicy("lru-k"))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		data := bytes.Repeat([]byte{0x5c}, 4096)
		if err := c.Checkpoint(1, data); err != nil {
			t.Fatal(err)
		}
		got, err := c.Restart(1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip under lru-k policy lost data")
		}
	})
	sim2, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim2.Run(func() {
		if _, err := sim2.NewClient(0, 0, score.WithEvictionPolicy("mru")); err == nil {
			t.Error("unknown eviction policy name accepted")
		}
	})
}
