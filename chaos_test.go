package score_test

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"score"
)

// chaosSchedules is the number of seeded fault schedules the soak runs;
// raise it for a longer campaign (make chaos).
var chaosSchedules = flag.Int("chaos.schedules", 50, "seeded fault schedules for TestChaosSoak")

// TestSSDOutageFallsBackToPFS is the deterministic end-to-end degradation
// scenario: the SSD tier dies mid-run, the flush chain reroutes to the
// PFS store without losing a checkpoint, and after a crash plus a
// corrupted SSD file the next process scrubs, falls back to the PFS copy,
// and restores everything bit-exact.
func TestSSDOutageFallsBackToPFS(t *testing.T) {
	ssdDir, pfsDir := t.TempDir(), t.TempDir()
	const n = 8
	payloads := make([][]byte, n)
	for v := range payloads {
		payloads[v] = bytes.Repeat([]byte{byte(0x11 * (v + 1))}, 256*1024)
	}

	sim1, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	inj := sim1.NewFaultInjector(7,
		score.FailAfter(score.FaultNVMe, 2*time.Millisecond),
		score.FailAfter(score.FaultStoreWrite, 2*time.Millisecond))
	sim1.Run(func() {
		c, err := sim1.NewClient(0, 0,
			score.WithGPUCache(1<<20), score.WithHostCache(4<<20),
			score.WithStore(ssdDir), score.WithPFSStore(pfsDir),
			score.WithFaultInjector(inj))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v := 0; v < n; v++ {
			if err := c.Checkpoint(int64(v), payloads[v]); err != nil {
				t.Fatalf("checkpoint %d: %v", v, err)
			}
			c.Compute(time.Millisecond)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatalf("flush chain did not survive the SSD outage: %v", err)
		}
		st := c.Stats()
		if st.Retries == 0 {
			t.Error("outage produced no retries")
		}
		if st.Degradations == 0 {
			t.Error("outage produced no degradation events")
		}
		tiers := c.DegradedTiers()
		if len(tiers) != 1 || tiers[0] != "ssd" {
			t.Errorf("DegradedTiers = %v, want [ssd]", tiers)
		}
		if st.FlushAborts != 0 {
			t.Errorf("FlushAborts = %d; the PFS route should have saved every flush", st.FlushAborts)
		}
		if err := c.CheckMetricsInvariants(true); err != nil {
			t.Errorf("metrics invariants after drain: %v", err)
		}
	})

	// A few checkpoints reached the SSD store before the outage; corrupt
	// the oldest on disk (silent media fault).
	files, err := filepath.Glob(filepath.Join(ssdDir, "*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no pre-outage SSD files (%v); outage fired too early", err)
	}
	corruptFile(t, files[0])

	sim2, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim2.Run(func() {
		c, err := sim2.NewClient(0, 0,
			score.WithGPUCache(1<<20), score.WithHostCache(4<<20),
			score.WithStore(ssdDir), score.WithPFSStore(pfsDir),
			score.WithScrubOnOpen())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if q := c.QuarantinedVersions(); len(q) != 1 {
			t.Errorf("QuarantinedVersions = %v, want exactly one", q)
		}
		if got := c.RecoveredVersions(); len(got) != n {
			t.Fatalf("recovered %d versions, want %d (PFS store should hold all)", len(got), n)
		}
		for v := n - 1; v >= 0; v-- {
			got, err := c.Restart(int64(v))
			if err != nil {
				t.Fatalf("restart %d: %v", v, err)
			}
			if !bytes.Equal(got, payloads[v]) {
				t.Fatalf("restart %d: not bit-exact", v)
			}
		}
		st := c.Stats()
		if st.FallbackReads == 0 {
			t.Error("no reads fell back to the PFS store")
		}
		if st.Repopulations == 0 {
			t.Error("no replicas were re-staged onto the SSD")
		}
	})
}

// TestChaosSoak replays N seeded random fault schedules against the full
// pipeline. The contract under chaos: every restore either returns the
// exact bytes written or a definitive error — never garbage, never a hang
// (the virtual clock panics on deadlock) — and a clean second process
// restores every durably recovered version bit-exact. Goroutines must not
// leak across schedules.
func TestChaosSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const n = 8
	for i := 0; i < *chaosSchedules; i++ {
		seed := int64(1000 + i)
		t.Run(fmt.Sprintf("schedule-%d", seed), func(t *testing.T) {
			runChaosSchedule(t, seed, n)
		})
	}
	// Allow simulated tasks to unwind, then check for leaks.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+2 {
		t.Errorf("goroutine leak: %d before soak, %d after", baseline, g)
	}
}

// randomRules derives one fault schedule from a seeded source. The PFS
// link and PFS store are never faulted: they are the floor of the
// degradation ladder, so every durably flushed checkpoint has a
// definitive fallback and bit-exactness stays checkable.
func randomRules(r *rand.Rand) []score.FaultRule {
	ms := func(lo, hi int) time.Duration {
		return time.Duration(lo+r.Intn(hi-lo+1)) * time.Millisecond
	}
	var rules []score.FaultRule
	if r.Float64() < 0.6 { // SSD-link trouble: window or permanent outage
		after := ms(0, 6)
		if r.Float64() < 0.5 {
			rules = append(rules, score.FailWindow(score.FaultNVMe, after, after+ms(1, 5)))
		} else {
			rules = append(rules, score.FailAfter(score.FaultNVMe, after))
		}
	}
	if r.Float64() < 0.4 {
		rules = append(rules, score.FailProb(score.FaultNVMe, 0.1+0.2*r.Float64()))
	}
	if r.Float64() < 0.5 {
		rules = append(rules, score.FailNth(score.FaultStoreWrite, int64(1+r.Intn(8))))
	}
	if r.Float64() < 0.5 {
		rules = append(rules, score.CorruptProb(score.FaultStoreRead, 0.3))
	}
	if r.Float64() < 0.4 {
		after := ms(0, 4)
		rules = append(rules, score.SlowLink(score.FaultPCIe, 0.1, after, after+ms(1, 4)))
	}
	if r.Float64() < 0.2 {
		rules = append(rules, score.FailProb(score.FaultPCIe, 0.02+0.03*r.Float64()))
	}
	if r.Float64() < 0.3 {
		rules = append(rules, score.DelayOps(score.FaultHostAlloc, ms(1, 3), 0, 0))
	}
	return rules
}

// corruptFile flips one byte mid-file.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func runChaosSchedule(t *testing.T, seed int64, n int) {
	ssdDir, pfsDir := t.TempDir(), t.TempDir()
	r := rand.New(rand.NewSource(seed))
	payloads := make([][]byte, n)
	for v := range payloads {
		b := make([]byte, 64*1024)
		r.Read(b)
		payloads[v] = b
	}
	rules := randomRules(r)

	// Life 1: write and read back under the fault schedule.
	sim1, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	inj := sim1.NewFaultInjector(seed, rules...)
	var flushErr error
	var aborts int64
	sim1.Run(func() {
		c, err := sim1.NewClient(0, 0,
			score.WithGPUCache(256<<10), score.WithHostCache(1<<20),
			score.WithStore(ssdDir), score.WithPFSStore(pfsDir),
			score.WithFaultInjector(inj))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v := 0; v < n; v++ {
			if err := c.Checkpoint(int64(v), payloads[v]); err != nil {
				t.Fatalf("checkpoint %d wedged: %v", v, err)
			}
			c.Compute(time.Millisecond)
		}
		flushErr = c.WaitFlush()
		// Every accepted byte must have a decided fate once the flush
		// chain drained; a failed drain still has to satisfy the
		// structural invariants.
		if err := c.CheckMetricsInvariants(flushErr == nil); err != nil {
			t.Errorf("metrics invariants after drain: %v", err)
		}
		for v := n - 1; v >= 0; v-- {
			got, err := c.Restart(int64(v))
			if err != nil {
				continue // definitive loss is allowed under chaos
			}
			if !bytes.Equal(got, payloads[v]) {
				t.Errorf("restart %d: returned wrong bytes instead of an error", v)
			}
		}
		if err := c.CheckMetricsInvariants(false); err != nil {
			t.Errorf("metrics invariants after restores: %v", err)
		}
		aborts = c.Stats().FlushAborts
	})

	// Life 2: a clean process on the same stores. Whatever was reported
	// durable must come back bit-exact.
	sim2, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim2.Run(func() {
		c, err := sim2.NewClient(0, 0,
			score.WithGPUCache(256<<10), score.WithHostCache(1<<20),
			score.WithStore(ssdDir), score.WithPFSStore(pfsDir),
			score.WithScrubOnOpen())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		recovered := c.RecoveredVersions()
		if flushErr == nil && aborts == 0 && len(recovered) != n {
			t.Errorf("clean flush but only %d/%d versions durable", len(recovered), n)
		}
		for _, v := range recovered {
			got, err := c.Restart(v)
			if err != nil {
				t.Errorf("restart %d of a recovered version: %v", v, err)
				continue
			}
			if !bytes.Equal(got, payloads[v]) {
				t.Errorf("restart %d: recovered bytes not bit-exact", v)
			}
		}
		if err := c.CheckMetricsInvariants(true); err != nil {
			t.Errorf("metrics invariants in recovery process: %v", err)
		}
	})
}
