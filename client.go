package score

import (
	"fmt"
	"sync"
	"time"

	"score/internal/core"
	"score/internal/device"
	"score/internal/faultinject"
	"score/internal/metrics"
	"score/internal/payload"
	"score/internal/predict"
	"score/internal/simclock"
	"score/internal/slo"
)

// ClientOption configures one process's runtime.
type ClientOption func(*clientConfig)

type clientConfig struct {
	gpuCache      int64
	hostCache     int64
	discard       bool
	persistPFS    bool
	autoPrefetch  bool
	asyncHostInit bool
	storeDir      string
	pfsStoreDir   string
	scrubOnOpen   bool
	autoHints     bool
	gpuDirect     bool
	chunkSize     int64
	flushStreams  int
	injector      *faultinject.Injector
	partnerDir    string
	tracker       *CommitTracker
	rank          int
	evictPolicy   string
	hedge         bool
	slo           *slo.Engine
}

// WithGPUCache sets the device cache reservation (default 4 GiB, the
// paper's 10% of an A100).
func WithGPUCache(bytes int64) ClientOption {
	return func(c *clientConfig) { c.gpuCache = bytes }
}

// WithHostCache sets the pinned host cache reservation (default 32 GiB).
func WithHostCache(bytes int64) ClientOption {
	return func(c *clientConfig) { c.hostCache = bytes }
}

// WithDiscardAfterRestore marks consumed checkpoints discardable: their
// pending flushes are cancelled. Use for adjoint workloads that never
// revisit a consumed checkpoint.
func WithDiscardAfterRestore() ClientOption {
	return func(c *clientConfig) { c.discard = true }
}

// WithPersistToPFS extends the flush chain past the node-local SSD to the
// shared parallel file system.
func WithPersistToPFS() ClientOption {
	return func(c *clientConfig) { c.persistPFS = true }
}

// WithAutoPrefetch starts prefetching as soon as hints arrive instead of
// waiting for PrefetchStart.
func WithAutoPrefetch() ClientOption {
	return func(c *clientConfig) { c.autoPrefetch = true }
}

// WithAsyncHostInit overlaps the slow pinned host cache registration with
// the start of the run (the paper's measured behavior) instead of paying
// it during NewClient.
func WithAsyncHostInit() ClientOption {
	return func(c *clientConfig) { c.asyncHostInit = true }
}

// WithGPUDirect flushes GPU→SSD and prefetches SSD→GPU directly,
// bypassing the host cache tier (the paper's GPUDirect-storage
// future-work item).
func WithGPUDirect() ClientOption {
	return func(c *clientConfig) { c.gpuDirect = true }
}

// WithAutoHints attaches a stride predictor to the restore stream: when
// the application provides no explicit hints but reads sequentially, in
// reverse, or with a constant stride, the predictor recognizes the
// pattern after three restores and feeds extrapolated hints to the
// prefetcher — the "higher-level I/O middleware" hinting of §4.1.1.
// Implies auto-started prefetching. Predictions are advisory: a wrong
// guess costs bandwidth, never correctness.
func WithAutoHints() ClientOption {
	return func(c *clientConfig) {
		c.autoHints = true
		c.autoPrefetch = true
	}
}

// WithStore makes the SSD tier durable at dir: checkpoints written with
// real data persist to disk (CRC-protected files), and a new client
// opened on the same directory recovers them — restartable across
// process crashes. See Client.RecoveredVersions.
func WithStore(dir string) ClientOption {
	return func(c *clientConfig) { c.storeDir = dir }
}

// WithPFSStore makes the PFS tier durable at dir, the deepest rung of the
// degradation ladder: flushes persist there in addition to the SSD store,
// and a failed or corrupt SSD read transparently falls back to the PFS
// copy (re-staging it onto the SSD when possible). Implies
// WithPersistToPFS. The directory is normally on the shared parallel file
// system, so every client (across restarts) opens the same path.
func WithPFSStore(dir string) ClientOption {
	return func(c *clientConfig) {
		c.pfsStoreDir = dir
		c.persistPFS = true
	}
}

// WithScrubOnOpen quarantines (renames to .corrupt) any invalid
// checkpoint files found when opening a durable store instead of refusing
// to start — the repair path after a crash left torn or corrupt files
// behind. Quarantined versions are reported by Client.QuarantinedVersions
// and, when a PFS store holds a good copy, remain restorable.
func WithScrubOnOpen() ClientOption {
	return func(c *clientConfig) { c.scrubOnOpen = true }
}

// WithChunkSize streams every multi-hop flush and promotion as a
// pipeline of chunk-sized pieces with consecutive hops overlapped
// (§4.3): chunk i moves on the second hop (e.g. NVMe) while chunk i+1
// moves on the first (PCIe), so a GPU→SSD flush approaches
// max(hop time) instead of the sum of hop times. Each stream holds one
// of the GPU's copy engines for its duration. 0 (the default) keeps the
// monolithic store-and-forward transfers.
func WithChunkSize(bytes int64) ClientOption {
	return func(c *clientConfig) { c.chunkSize = bytes }
}

// WithEvictionPolicy selects the GPU cache eviction policy by name:
// "score" (the paper's gap-aware sliding window, the default), "lru",
// "fifo", or one of the DBMS-inspired policies "lru-k", "2q", "arc",
// "clock-pro" (DESIGN.md §15). NewClient fails on an unknown name.
func WithEvictionPolicy(name string) ClientOption {
	return func(c *clientConfig) { c.evictPolicy = name }
}

// WithFlushStreams sets the worker count of each flusher stage pool
// (T_D2H and T_H2F). The default (0) uses one worker per stage without
// chunked streaming — the paper's single flusher thread per stage — and
// the GPU's copy-engine count when WithChunkSize is enabled.
func WithFlushStreams(n int) ClientOption {
	return func(c *clientConfig) { c.flushStreams = n }
}

// WithHedgedRestores enables gray-failure tolerance: deep restores race
// a hedge leg against the next-deeper replica (SSD → partner SSD → PFS)
// once the running leg exceeds its adaptive deadline — the online
// estimate for its link class — background flush legs that stall past
// their deadline re-route to an alternate durable tier, and link classes
// whose EWMA health score breaches the quarantine threshold are taken
// out of rotation until probes show them recovered. First success wins;
// every checkpoint still gets exactly one fate and restores never see
// wrong bytes. Off by default: without it (and without injected gray
// faults) the runtime behaves byte-identically to the sequential ladder.
func WithHedgedRestores() ClientOption {
	return func(c *clientConfig) { c.hedge = true }
}

// WithSLO attaches an SLO engine (built with Sim.NewSLOEngine):
// the runtime feeds it every finished critical-path record and drain
// outcome for online burn-rate evaluation against its objectives. Pure
// observation — attaching an engine never perturbs scheduling or
// timing, only evaluates it.
func WithSLO(eng *slo.Engine) ClientOption {
	return func(c *clientConfig) { c.slo = eng }
}

// WithFaultInjector attaches a fault-injection schedule (see
// internal/faultinject) to every I/O site this client touches: its PCIe
// copy engine and host allocations, the node's NVMe and PFS links, and
// the durable stores. The NVMe and PFS links are shared node resources,
// so an injector installed by one client intercepts every client on the
// node — install the same injector (or none) on all of them.
func WithFaultInjector(inj *faultinject.Injector) ClientOption {
	return func(c *clientConfig) { c.injector = inj }
}

// Client is one process's checkpointing runtime: the VELOC-style API of
// the paper (Listing 1) with the two new prefetching primitives.
type Client struct {
	inner       *core.Client
	dev         *device.GPU
	clk         simclock.Clock
	predictor   *predict.Predictor // nil unless WithAutoHints
	quarantined []int64            // versions scrubbed at open (WithScrubOnOpen)
	node        int                // node index, for migration path construction
	inj         *faultinject.Injector

	drainMu       sync.Mutex
	drainManifest DrainManifest // last drain's manifest (timer- or call-driven)
	drainDone     bool
}

// Checkpoint writes version with real data. It blocks only until the data
// is copied into the GPU cache; flushing to the slower tiers proceeds in
// the background (VELOC_Checkpoint).
func (c *Client) Checkpoint(version int64, data []byte) error {
	return c.inner.Checkpoint(core.ID(version), payload.NewReal(data))
}

// CheckpointVirtual writes a size-only checkpoint (for large-scale
// benchmarking where materializing the bytes is pointless).
func (c *Client) CheckpointVirtual(version int64, size int64) error {
	return c.inner.Checkpoint(core.ID(version), payload.NewVirtual(size))
}

// Restart reads version back into the application buffer, blocking until
// the data is on the GPU (VELOC_Restart). For checkpoints written with
// Checkpoint it returns the original bytes, checksum-verified.
func (c *Client) Restart(version int64) ([]byte, error) {
	if c.predictor != nil {
		c.predictor.Observe(version)
	}
	pay, err := c.inner.Restore(core.ID(version))
	if err != nil {
		return nil, err
	}
	data := pay.Bytes()
	if data == nil {
		// Recovered payloads load lazily from the durable stores; a nil
		// result may be a load failure rather than a virtual checkpoint.
		// Surface it as a definitive error instead of (nil, nil).
		if lp, ok := pay.(interface{ LoadErr() error }); ok {
			if err := lp.LoadErr(); err != nil {
				return nil, fmt.Errorf("score: restart %d: %w", version, err)
			}
		}
	}
	if data != nil {
		if err := payload.Verify(pay, data); err != nil {
			return nil, fmt.Errorf("score: restart %d: %w", version, err)
		}
	}
	return data, nil
}

// RestartSize returns a checkpoint's size (VELOC_Recover_size).
func (c *Client) RestartSize(version int64) (int64, error) {
	return c.inner.RestoreSize(core.ID(version))
}

// PrefetchEnqueue hints that version will be restored after all
// previously hinted versions (VELOC_Prefetch_enqueue). Hints are
// advisory and cannot be revoked.
func (c *Client) PrefetchEnqueue(version int64) {
	c.inner.PrefetchEnqueue(core.ID(version))
}

// PrefetchStart begins asynchronous prefetching (VELOC_Prefetch_start);
// useful to keep prefetches from competing with the forward pass's
// flushes.
func (c *Client) PrefetchStart() { c.inner.PrefetchStart() }

// WaitFlush blocks until every written checkpoint has drained to the
// node-local SSD (and the PFS when persistence is enabled).
func (c *Client) WaitFlush() error { return c.inner.WaitFlush() }

// Compute emulates computation for d of simulated time.
func (c *Client) Compute(d time.Duration) { c.dev.Compute(d) }

// Close stops the client's background flusher and prefetcher tasks.
func (c *Client) Close() { c.inner.Close() }

// Err returns the first asynchronous runtime failure, if any.
func (c *Client) Err() error { return c.inner.Err() }

// Stats summarizes the client's measurements.
type Stats struct {
	// CheckpointBytes and RestoreBytes are totals moved by the API.
	CheckpointBytes, RestoreBytes int64
	// CheckpointOps and RestoreOps count operations.
	CheckpointOps, RestoreOps int64
	// CheckpointThroughput and RestoreThroughput are the application-
	// observed rates in bytes per simulated second (total size over
	// blocking time, the paper's §5.4.1 metric).
	CheckpointThroughput, RestoreThroughput float64
	// MeanPrefetchDistance is the average number of successor
	// checkpoints already resident on the GPU at each restore (§5.4.4).
	MeanPrefetchDistance float64
	// DeviationReads counts restores that departed from the hint order.
	DeviationReads int64
	// Retries counts I/O attempts repeated after a transient failure,
	// across all tiers.
	Retries int64
	// Degradations counts tiers this client marked unusable after
	// retries were exhausted.
	Degradations int64
	// FallbackReads counts reads served from a deeper tier because the
	// preferred tier failed or lost the copy.
	FallbackReads int64
	// Repopulations counts replicas re-staged into a faster tier after a
	// fallback read.
	Repopulations int64
	// FlushAborts counts checkpoints whose every durable route failed;
	// their cached replica becomes sacrificial (Restore may report a
	// definitive loss, but the cache never wedges).
	FlushAborts int64
	// SyncFlushes counts checkpoints that bypassed the GPU cache with a
	// synchronous flush under device-memory pressure (§2 condition 4).
	SyncFlushes int64
	// PipelinedStreams counts chunked multi-hop transfer streams (always
	// 0 without WithChunkSize).
	PipelinedStreams int64
	// PipelineOverlap is the total simulated transfer time hidden by
	// pipelining chunks across consecutive hops.
	PipelineOverlap time.Duration
	// TierRecoveries counts degraded tiers this client healed after a
	// recovery probe succeeded.
	TierRecoveries int64
	// PartnerCopies and PartnerCopyBytes count replicas staged on the
	// partner node's SSD (WithPartnerCopy); PartnerCopyFailures counts
	// replication attempts that failed.
	PartnerCopies, PartnerCopyBytes, PartnerCopyFailures int64
	// RankDeaths is 1 once this rank was killed by fault injection.
	RankDeaths int64
	// Drains counts preemption drains begun; DrainDeadlineHits how many
	// finished inside their grace window.
	Drains, DrainDeadlineHits int64
	// DrainedVersions/DrainedBytes count state the drain triage made
	// durable; DrainAbandonedVersions/DrainAbandonedBytes count state it
	// failed open to ErrLost because the deadline budget ran out.
	DrainedVersions, DrainedBytes               int64
	DrainAbandonedVersions, DrainAbandonedBytes int64
	// Migrations counts live tier migrations begun; MigratedVersions and
	// MigratedBytes what they copied to the successor;
	// MigrationFailures per-version copies that failed through retries.
	Migrations, MigratedVersions, MigratedBytes, MigrationFailures int64
	// HedgesLaunched counts hedge legs launched against a deeper replica
	// after a deep read ran past its adaptive deadline
	// (WithHedgedRestores); HedgeWins how many of those hedge legs won
	// their race; HedgeWastedBytes the bytes moved by legs that lost.
	HedgesLaunched, HedgeWins, HedgeWastedBytes int64
	// StallsDetected counts background flush legs that ran past their
	// adaptive deadline without failing (gray stalls); StallsRerouted how
	// many of those flushes went durable on an alternate tier instead.
	StallsDetected, StallsRerouted int64
	// HealthQuarantines counts tiers taken out of rotation because their
	// EWMA health score breached — gray failures, where operations
	// succeed but run far slower than nominal.
	HealthQuarantines int64
}

// PredictedHints reports how many hints the auto-hint predictor has
// issued (0 without WithAutoHints).
func (c *Client) PredictedHints() int64 {
	if c.predictor == nil {
		return 0
	}
	return c.predictor.Emitted()
}

// RecoveredVersions lists the checkpoint versions recovered from the
// durable store (WithStore) when the client was created, ascending.
func (c *Client) RecoveredVersions() []int64 {
	ids := c.inner.Recovered()
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	return out
}

// Stats returns the client's measurements so far.
func (c *Client) Stats() Stats {
	s := c.inner.Metrics().Snapshot()
	return Stats{
		CheckpointBytes:        s.CheckpointBytes,
		RestoreBytes:           s.RestoreBytes,
		CheckpointOps:          s.CheckpointOps,
		RestoreOps:             s.RestoreOps,
		CheckpointThroughput:   s.CheckpointThroughput(),
		RestoreThroughput:      s.RestoreThroughput(),
		MeanPrefetchDistance:   s.MeanPrefetchDistance(),
		DeviationReads:         s.DeviationReads,
		Retries:                s.TotalRetries(),
		Degradations:           s.TotalDegradations(),
		FallbackReads:          s.FallbackReads,
		Repopulations:          s.Repopulations,
		FlushAborts:            s.FlushAborts,
		SyncFlushes:            s.SyncFlushes,
		PipelinedStreams:       s.PipelinedStreams,
		PipelineOverlap:        s.PipelineOverlap(),
		TierRecoveries:         s.TotalTierRecoveries(),
		PartnerCopies:          s.PartnerCopies,
		PartnerCopyBytes:       s.PartnerCopyBytes,
		PartnerCopyFailures:    s.PartnerCopyFailures,
		RankDeaths:             s.RankDeaths,
		Drains:                 s.Drains,
		DrainDeadlineHits:      s.DrainDeadlineHits,
		DrainedVersions:        s.DrainedVersions,
		DrainedBytes:           s.DrainedBytes,
		DrainAbandonedVersions: s.DrainAbandonedVersions,
		DrainAbandonedBytes:    s.DrainAbandonedBytes,
		Migrations:             s.Migrations,
		MigratedVersions:       s.MigratedVersions,
		MigratedBytes:          s.MigratedBytes,
		MigrationFailures:      s.MigrationFailures,
		HedgesLaunched:         s.HedgesLaunched,
		HedgeWins:              s.HedgeWins,
		HedgeWastedBytes:       s.HedgeWastedBytes,
		StallsDetected:         s.StallsDetected,
		StallsRerouted:         s.StallsRerouted,
		HealthQuarantines:      s.HealthQuarantines,
	}
}

// MetricsSummary returns the full internal metrics snapshot — latency
// histograms, conservation accounting, robustness counters — for
// exporters and invariant checks. Stats remains the compact view.
func (c *Client) MetricsSummary() metrics.Summary {
	return c.inner.Metrics().Snapshot()
}

// CheckMetricsInvariants verifies the runtime's structural metric
// invariants (byte conservation bounds, retry-bout bounds, histogram
// consistency). With quiescent set it additionally asserts the flush
// pipeline fully drained — valid only after WaitFlush and before Close.
func (c *Client) CheckMetricsInvariants(quiescent bool) error {
	if quiescent {
		return c.inner.CheckInvariantsQuiescent()
	}
	return c.inner.CheckInvariants()
}

// DegradedTiers lists the tiers this client has stopped using after
// persistent failures ("ssd", "host", ...), in flush order. Empty means
// the full pipeline is healthy.
func (c *Client) DegradedTiers() []string {
	tiers := c.inner.DegradedTiers()
	out := make([]string, len(tiers))
	for i, t := range tiers {
		out[i] = t.String()
	}
	return out
}

// QuarantinedVersions lists the checkpoint versions whose durable files
// were quarantined by WithScrubOnOpen when this client opened its stores,
// ascending. A version with a healthy copy in the PFS store is still
// restorable despite appearing here.
func (c *Client) QuarantinedVersions() []int64 {
	out := make([]int64, len(c.quarantined))
	copy(out, c.quarantined)
	return out
}
