package score_test

import (
	"flag"
	"strings"
	"testing"
	"time"

	"score/internal/experiments"
	"score/internal/report"
	"score/internal/slo"
)

// sloOut, when set, makes the smoke test write the per-cell compliance
// reports as a score-slo/v1 JSON file (make slo-smoke passes
// BENCH_slo.json) — budget remaining, peak burn, and the alert history
// per objective, tracked as a CI artifact across commits.
var sloOut = flag.String("slo.out", "", "write SLO compliance reports to this JSON file")

// TestSLOSmoke is the `make slo-smoke` observability gate: the straggler
// sweep run under the checked-in restore-tail objective must produce the
// end-to-end alert story — the healthy control fires nothing and keeps
// its full error budget, while the 20× gray straggler fires the
// restore-p99 burn-rate alert with the transfer component (the degraded
// link) dominating the attribution.
func TestSLOSmoke(t *testing.T) {
	cfg := experiments.StragglerConfig{
		Checkpoints: 12,
		Size:        32 << 20,
		Interval:    2 * time.Millisecond,
		Severities:  []float64{1, 20},
		Objectives:  slo.StragglerObjectives(),
	}
	res, err := experiments.Straggler(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var runs []report.SLORun
	for _, c := range res.Cells {
		if c.SLO == nil {
			t.Fatalf("%s: no SLO report attached", c.Label())
		}
		rep := *c.SLO
		runs = append(runs, report.SLORun{Label: "straggler/" + c.Label(), Report: rep})
		if len(rep.Objectives) != 1 {
			t.Fatalf("%s: %d objectives, want 1", c.Label(), len(rep.Objectives))
		}
		o := rep.Objectives[0]
		t.Logf("%-16s events %-3d compliance %.3f budget %+.2f peak burn %5.1f alerts %d/%d attr %q",
			c.Label(), o.Events, o.Compliance, o.BudgetRemaining, o.PeakBurn, o.Fired, o.Resolved, o.Attribution)
		if len(rep.Warnings) != 0 {
			t.Errorf("%s: unexpected conservation warnings: %v", c.Label(), rep.Warnings)
		}
		// Every cell restores the full backlog; the engine must have seen
		// exactly one latency event per restore — no lost observations.
		if o.Events != int64(c.Restores) {
			t.Errorf("%s: engine saw %d restore events, client made %d restores",
				c.Label(), o.Events, c.Restores)
		}
	}

	// Healthy control: no alert fires and the budget stays untouched.
	for _, hedged := range []bool{false, true} {
		c, ok := res.Cell(1, hedged)
		if !ok {
			t.Fatal("healthy control cell missing")
		}
		o := c.SLO.Objectives[0]
		if o.Fired != 0 || c.SLO.Breached() {
			t.Errorf("%s: healthy control breached (fired %d, met %v)", c.Label(), o.Fired, o.Met())
		}
		if o.BudgetRemaining != 1 {
			t.Errorf("%s: healthy control budget %v, want full (1.0)", c.Label(), o.BudgetRemaining)
		}
	}

	// The degraded cell: the burn-rate alert fires, and the critical-path
	// attribution names a transfer component — the observable story is
	// "restore tail burning budget, driven by the slow link", not just a
	// number over a threshold.
	un, ok := res.Cell(20, false)
	if !ok {
		t.Fatal("severity-20 unhedged cell missing")
	}
	o := un.SLO.Objectives[0]
	if o.Fired == 0 {
		t.Errorf("severity-20 unhedged: restore-p99 never fired (compliance %.3f)", o.Compliance)
	}
	if !un.SLO.Breached() {
		t.Error("severity-20 unhedged: report not marked breached")
	}
	if !strings.HasPrefix(o.Attribution, "xfer") {
		t.Errorf("severity-20 unhedged: attribution %q, want a transfer component", o.Attribution)
	}
	for _, a := range un.SLO.Alerts {
		t.Logf("alert: %s %s", a.Event, a.Detail())
	}

	if *sloOut != "" {
		if err := report.WriteSLOFile(*sloOut, runs); err != nil {
			t.Fatalf("writing %s: %v", *sloOut, err)
		}
		t.Logf("wrote %d compliance reports to %s", len(runs), *sloOut)
	}
}
