// Determinism property tests for the SLO engine: the alert fire/resolve
// ledger — and the full compliance report behind it — must be
// byte-identical across the wheel and heap timer backends and across
// serial vs parallel same-instant wakeups. The engine's contract
// (DESIGN.md §17) is that same-instant observations are staged
// commutatively and evaluated once when virtual time moves, so cohort
// execution order can never reorder or change an alert transition.
package score_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"score/internal/metrics"
	"score/internal/simclock"
	"score/internal/slo"
	"score/internal/trace"
)

// sloScenarioFingerprint drives one shared SLO engine from 64 ranks on
// quantized compute cadences (the sharpest serial-vs-parallel probe:
// ranks form same-instant cohorts whose real execution order differs
// across engines) and renders everything observable — the alert ledger
// at the synthetic SLO rank, the end-of-run report, and the final
// virtual time — into one string.
//
// The load shape exercises both alert edges: the first rounds carry
// slow, SSD-dominated restores and missed drain deadlines (burn spikes,
// alerts fire), the later rounds run clean (windows slide empty, alerts
// resolve).
func sloScenarioFingerprint(t *testing.T, opts ...simclock.VirtualOption) string {
	t.Helper()
	const (
		ranks  = 64
		rounds = 6
	)
	clk := simclock.NewVirtual(opts...)
	tr := trace.New(clk.Now)
	flight := tr.Flight()

	window := []slo.Window{{Long: 400 * time.Microsecond, Short: 100 * time.Microsecond, Rate: 2}}
	eng, err := slo.NewEngine(clk.Now,
		slo.Objective{
			Name: "restore-p99", Class: "det", Kind: slo.KindRestoreLatency,
			Goal: 0.9, Threshold: 10 * time.Millisecond, Windows: window,
		},
		slo.Objective{
			Name: "hit-rate", Class: "det", Kind: slo.KindHitRate,
			Goal: 0.5, Windows: []slo.Window{{Long: 400 * time.Microsecond, Short: 100 * time.Microsecond, Rate: 1.5}},
		},
		slo.Objective{
			Name: "drain", Class: "det", Kind: slo.KindDrainDeadline,
			Goal: 0.5, Windows: []slo.Window{{Long: 400 * time.Microsecond, Short: 100 * time.Microsecond, Rate: 1.5}},
		})
	if err != nil {
		t.Fatal(err)
	}
	var seq atomic.Int64
	eng.SetAlertSink(func(a slo.Alert) {
		kind := trace.LSLOFired
		if !a.Fired() {
			kind = trace.LSLOResolved
		}
		flight.RecordAt(-1, seq.Add(1), kind, a.Class, a.Detail(), a.At)
	})

	clk.Run(func() {
		wg := simclock.NewWaitGroup(clk)
		for r := 0; r < ranks; r++ {
			r := r
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				for k := 0; k < rounds; k++ {
					// Quantized compute: 4 distinct values -> cohorts of ~16.
					jitter := ((r*7 + k*13) % 4) * 25
					clk.Sleep(time.Duration(100+jitter) * time.Microsecond)
					// Rounds 0-2: every third rank's restore is a slow
					// SSD-dominated miss. Rounds 3-5: all fast cache hits.
					bad := k < 3 && r%3 == 0
					total := time.Millisecond
					comps := map[string]time.Duration{metrics.CompGPUWait: total}
					if bad {
						total = 20 * time.Millisecond
						ssd := 15*time.Millisecond + time.Duration(r%5)*time.Millisecond
						comps = map[string]time.Duration{
							metrics.CompXferSSD:      ssd,
							metrics.CompRetryBackoff: total - ssd,
						}
					}
					eng.ObserveCritPath(metrics.CritPathRecord{
						Op: metrics.CritRestore, Version: int64(k),
						Start: clk.Now() - total, Total: total, Components: comps,
					})
					// Rounds 0-1 miss every drain deadline; the rest meet it.
					eng.ObserveDrain(k >= 2)
				}
			})
		}
		wg.Wait()
		eng.Finalize()
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, "final=%v\n", clk.Now())
	rep, err := json.Marshal(eng.Report())
	if err != nil {
		t.Fatal(err)
	}
	sb.Write(rep)
	sb.WriteByte('\n')
	for _, ev := range flight.Ledger(-1) {
		fmt.Fprintf(&sb, "%d %s %s %q %v\n", ev.Version, ev.Kind, ev.Tier, ev.Detail, ev.At)
	}
	return sb.String()
}

// TestSLODeterminismWheelVsHeap: the alert ledger and report must be
// byte-identical across the timer wheel and the reference heap.
func TestSLODeterminismWheelVsHeap(t *testing.T) {
	wheel := sloScenarioFingerprint(t)
	heap := sloScenarioFingerprint(t, simclock.WithHeapTimers())
	if wheel != heap {
		t.Fatalf("wheel and heap timer backends diverged:\nwheel:\n%s\nheap:\n%s", wheel, heap)
	}
}

// TestSLODeterminismSerialVsParallel: parallel same-instant wakeups must
// reproduce the serial alert sequence byte for byte — the staged-batch
// evaluation makes same-instant observation order unobservable. Repeated
// runs guard against scheduler-order flakes in the parallel mode.
func TestSLODeterminismSerialVsParallel(t *testing.T) {
	serial := sloScenarioFingerprint(t)
	for i := 0; i < 5; i++ {
		par := sloScenarioFingerprint(t, simclock.WithParallelWake())
		if serial != par {
			t.Fatalf("run %d: parallel wake diverged from serial engine:\nserial:\n%s\nparallel:\n%s", i, serial, par)
		}
	}
}

// TestSLODeterminismRepeatable: two serial runs are byte-identical, and
// the scenario genuinely exercises both alert edges (at least one fire
// and one resolve land in the ledger) so the goldens above compare a
// non-trivial sequence.
func TestSLODeterminismRepeatable(t *testing.T) {
	a := sloScenarioFingerprint(t)
	b := sloScenarioFingerprint(t)
	if a != b {
		t.Fatal("two serial runs of the same scenario diverged")
	}
	if !strings.Contains(a, trace.LSLOFired.String()) || !strings.Contains(a, trace.LSLOResolved.String()) {
		t.Fatalf("scenario did not exercise both alert edges:\n%s", a)
	}
}
