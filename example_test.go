package score_test

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"score"
)

// Example reproduces the paper's Listing 1: enqueue reverse-order hints,
// run a forward pass of checkpoints, start prefetching, and read the
// history back in reverse.
func Example() {
	sim, err := score.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(func() {
		client, err := sim.NewClient(0, 0,
			score.WithGPUCache(16<<20), score.WithHostCache(64<<20))
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()

		const n = 4
		for v := int64(n - 1); v >= 0; v-- {
			client.PrefetchEnqueue(v) // VELOC_Prefetch_enqueue
		}
		for v := 0; v < n; v++ {
			data := bytes.Repeat([]byte{byte('a' + v)}, 1<<20)
			if err := client.Checkpoint(int64(v), data); err != nil { // VELOC_Checkpoint
				log.Fatal(err)
			}
			client.Compute(10 * time.Millisecond)
		}
		client.PrefetchStart() // VELOC_Prefetch_start
		for v := n - 1; v >= 0; v-- {
			data, err := client.Restart(int64(v)) // VELOC_Restart
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("restored %d: %c...\n", v, data[0])
		}
	})
	// Output:
	// restored 3: d...
	// restored 2: c...
	// restored 1: b...
	// restored 0: a...
}

// ExampleClient_RestartSize shows querying a checkpoint's size before
// allocating the destination buffer (VELOC_Recover_size).
func ExampleClient_RestartSize() {
	sim, err := score.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(func() {
		client, err := sim.NewClient(0, 0,
			score.WithGPUCache(16<<20), score.WithHostCache(64<<20))
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		if err := client.Checkpoint(7, make([]byte, 12345)); err != nil {
			log.Fatal(err)
		}
		size, err := client.RestartSize(7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("checkpoint 7 holds", size, "bytes")
	})
	// Output:
	// checkpoint 7 holds 12345 bytes
}

// ExampleSim_multiGPU runs two processes that contend on the node's
// shared links, the way co-located ranks do on a DGX node.
func ExampleSim_multiGPU() {
	sim, err := score.NewSim(score.WithGPUsPerNode(2))
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(func() {
		wg := sim.NewWaitGroup()
		for g := 0; g < 2; g++ {
			g := g
			wg.Add(1)
			sim.Clock().Go(func() {
				defer wg.Done()
				c, err := sim.NewClient(0, g,
					score.WithGPUCache(16<<20), score.WithHostCache(64<<20))
				if err != nil {
					log.Fatal(err)
				}
				defer c.Close()
				for v := int64(0); v < 3; v++ {
					if err := c.CheckpointVirtual(v, 4<<20); err != nil {
						log.Fatal(err)
					}
				}
				if err := c.WaitFlush(); err != nil {
					log.Fatal(err)
				}
			})
		}
		wg.Wait()
		fmt.Println("both ranks drained their flush chains")
	})
	// Output:
	// both ranks drained their flush chains
}
