// binomial demonstrates binomial checkpointing (REVOLVE): reversing a
// long computation with a checkpoint budget far smaller than the step
// count, the memory-bound automatic-differentiation pattern the paper's
// introduction highlights (quantum optimal control, §1). The schedule
// interleaves writes, reads, and recomputation — "the need to write and
// read checkpoints in any predefined order" — and the example feeds every
// scheduled Restore into the runtime's hint queue so the prefetcher can
// exploit the schedule's perfect foreknowledge.
//
// Run with:
//
//	go run ./examples/binomial
package main

import (
	"fmt"
	"log"
	"time"

	"score"
	"score/internal/revolve"
)

const (
	steps = 200 // primal steps to reverse
	slots = 6   // simultaneous checkpoint budget
)

// state is the primal computation: a toy iterated map whose trajectory
// the backward pass must revisit in exact reverse order.
type state struct {
	step int
	x    uint64
}

func advance(s state, to int) state {
	for s.step < to {
		s.x = s.x*6364136223846793005 + 1442695040888963407 // LCG step
		s.step++
	}
	return s
}

func encode(s state) []byte {
	buf := make([]byte, 12+1<<16) // pad to a realistic checkpoint size
	for i := 0; i < 8; i++ {
		buf[i] = byte(s.x >> (8 * i))
	}
	for i := 0; i < 4; i++ {
		buf[8+i] = byte(uint32(s.step) >> (8 * i))
	}
	return buf
}

func decode(buf []byte) state {
	var s state
	for i := 0; i < 8; i++ {
		s.x |= uint64(buf[i]) << (8 * i)
	}
	var st uint32
	for i := 0; i < 4; i++ {
		st |= uint32(buf[8+i]) << (8 * i)
	}
	s.step = int(st)
	return s
}

func main() {
	schedule, err := revolve.Schedule(steps, slots)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revolve schedule: %d actions, %d forward steps for %d primal steps (%.2fx recompute), peak %d/%d slots\n",
		len(schedule), revolve.ForwardSteps(schedule), steps,
		float64(revolve.ForwardSteps(schedule))/float64(steps),
		revolve.PeakSlots(schedule), slots)

	sim, err := score.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(func() {
		client, err := sim.NewClient(0, 0,
			score.WithGPUCache(1<<20), // tiny tier: only ~3 slots fit
			score.WithHostCache(8<<20),
			score.WithAutoPrefetch(),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()

		// The schedule is fully known: hint every Restore in order.
		version := map[int]int64{} // primal step -> latest checkpoint version
		next := int64(0)
		plan := map[int]int64{}
		for _, a := range schedule {
			switch a.Kind {
			case revolve.Store:
				plan[a.Step] = next
				next++
			case revolve.Restore:
				client.PrefetchEnqueue(plan[a.Step])
			}
		}

		// Execute the schedule against the runtime.
		cur := state{}
		expected := make([]uint64, steps) // forward trajectory for verification
		probe := state{}
		for i := 0; i < steps; i++ {
			expected[i] = probe.x
			probe = advance(probe, i+1)
		}

		reversed := 0
		next = 0
		for _, a := range schedule {
			switch a.Kind {
			case revolve.Store:
				version[a.Step] = next
				if err := client.Checkpoint(next, encode(cur)); err != nil {
					log.Fatalf("store step %d: %v", a.Step, err)
				}
				next++
			case revolve.Restore:
				buf, err := client.Restart(version[a.Step])
				if err != nil {
					log.Fatalf("restore step %d: %v", a.Step, err)
				}
				cur = decode(buf)
				if cur.step != a.Step {
					log.Fatalf("restored step %d, want %d", cur.step, a.Step)
				}
			case revolve.Advance:
				cur = advance(cur, a.Target)
				client.Compute(time.Duration(a.Target-a.Step) * time.Millisecond)
			case revolve.Reverse:
				if cur.x != expected[a.Step] {
					log.Fatalf("adjoint of step %d sees state %#x, want %#x",
						a.Step, cur.x, expected[a.Step])
				}
				reversed++
				client.Compute(time.Millisecond)
			case revolve.Discard:
				// The runtime evicts lazily; nothing to do.
			}
		}
		if reversed != steps {
			log.Fatalf("reversed %d steps, want %d", reversed, steps)
		}

		st := client.Stats()
		fmt.Printf("reversed %d steps with %d checkpoint writes and %d restores (all verified)\n",
			steps, st.CheckpointOps, st.RestoreOps)
		fmt.Printf("application-observed: ckpt %.2f GB/s, restore %.2f GB/s\n",
			st.CheckpointThroughput/(1<<30), st.RestoreThroughput/(1<<30))
		fmt.Printf("simulated time: %v\n", sim.Clock().Now().Round(time.Microsecond))
	})
}
