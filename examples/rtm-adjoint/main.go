// rtm-adjoint runs a real (not sleep-emulated) adjoint computation: a 2-D
// acoustic wave propagation whose forward pass checkpoints the compressed
// wavefield every few timesteps, and whose backward pass restores the
// snapshots in reverse order to cross-correlate — the Reverse Time
// Migration pattern that motivates the paper (§1, §5.3.1).
//
// The compressed snapshots have genuinely variable sizes (tiny while the
// wavefront is small, large once it fills the domain), exercising the
// gap-aware fragmentation handling of the cache tiers with real data.
//
// Run with:
//
//	go run ./examples/rtm-adjoint
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"score"
	"score/internal/wavefield"
)

const (
	snapshotEvery = 4   // checkpoint cadence in timesteps
	steps         = 384 // forward timesteps
)

func main() {
	sim, err := score.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(func() {
		client, err := sim.NewClient(0, 0,
			score.WithGPUCache(8<<20), // tight caches: the 128x128 field
			score.WithHostCache(32<<20),
			score.WithDiscardAfterRestore(), // adjoint never re-reads
		)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()

		// A larger domain with the source near a corner keeps the
		// wavefront from filling the grid: early snapshots compress by
		// orders of magnitude, late ones barely — the paper's
		// variable-size distribution, from real data (cf. Fig. 4).
		cfg := wavefield.DefaultConfig()
		cfg.NX, cfg.NZ = 256, 256
		cfg.SourceX, cfg.SourceZ = 32, 32
		prop, err := wavefield.NewPropagator(cfg)
		if err != nil {
			log.Fatal(err)
		}

		versions := steps / snapshotEvery
		for v := int64(versions - 1); v >= 0; v-- {
			client.PrefetchEnqueue(v)
		}

		// Forward pass: propagate, compress, checkpoint.
		var rawBytes, compBytes int64
		energies := make([]float64, versions)
		for v := 0; v < versions; v++ {
			for s := 0; s < snapshotEvery; s++ {
				prop.Step()
			}
			snap := prop.Snapshot()
			comp := wavefield.Compress(snap)
			rawBytes += int64(len(snap))
			compBytes += int64(len(comp))
			energies[v] = prop.Energy()
			if err := client.Checkpoint(int64(v), comp); err != nil {
				log.Fatalf("checkpoint %d: %v", v, err)
			}
			client.Compute(2 * time.Millisecond)
		}
		fmt.Printf("forward pass: %d snapshots, %.1f MiB raw -> %.1f MiB compressed (%.1fx)\n",
			versions, mib(rawBytes), mib(compBytes), float64(rawBytes)/float64(compBytes))

		client.PrefetchStart()

		// Backward pass: restore in reverse, decompress, verify the
		// wavefield state matches the forward pass exactly.
		for v := versions - 1; v >= 0; v-- {
			comp, err := client.Restart(int64(v))
			if err != nil {
				log.Fatalf("restart %d: %v", v, err)
			}
			snap, err := wavefield.Decompress(comp)
			if err != nil {
				log.Fatalf("decompress %d: %v", v, err)
			}
			if err := prop.Restore(snap); err != nil {
				log.Fatalf("restore %d: %v", v, err)
			}
			if got := prop.Energy(); math.Abs(got-energies[v]) > 1e-9 {
				log.Fatalf("snapshot %d: energy %v, want %v — adjoint state corrupt", v, got, energies[v])
			}
			// Cross-correlation work would happen here.
			client.Compute(2 * time.Millisecond)
		}

		st := client.Stats()
		fmt.Printf("backward pass: %d restores verified bit-exact against the forward wavefield\n", st.RestoreOps)
		fmt.Printf("application-observed: ckpt %.2f GB/s, restore %.2f GB/s, prefetch distance %.2f\n",
			st.CheckpointThroughput/(1<<30), st.RestoreThroughput/(1<<30), st.MeanPrefetchDistance)
		fmt.Printf("simulated time: %v\n", sim.Clock().Now().Round(time.Microsecond))
	})
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }
