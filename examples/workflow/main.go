// workflow demonstrates a coupled producer–consumer pipeline (§1): a
// simulation task produces intermediate checkpoints in real time while an
// analytics task consumes them concurrently in a priority order it
// announces through prefetch hints. Writes and reads interleave under
// concurrency — the scenario the unified flush/prefetch life cycle
// (§4.1.3) is designed for — and read-after-write is served even while
// flushes are still pending (§2, condition 2).
//
// Run with:
//
//	go run ./examples/workflow
package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"score"
)

const (
	batches   = 64
	batchSize = 4 << 20
	interval  = 5 * time.Millisecond
)

func main() {
	sim, err := score.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(func() {
		client, err := sim.NewClient(0, 0,
			score.WithGPUCache(32<<20),
			score.WithHostCache(128<<20),
			score.WithAutoPrefetch(), // consume as soon as hints resolve
		)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()

		// The analytics task triages batches by "interest": a
		// predetermined priority permutation it declares up front.
		priority := rand.New(rand.NewSource(7)).Perm(batches)
		for _, v := range priority {
			client.PrefetchEnqueue(int64(v))
		}

		clk := sim.Clock()
		wg := sim.NewWaitGroup()
		written := make([]atomic.Bool, batches) // producer progress (monotonic)

		// Producer: one simulated batch every interval.
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			for v := 0; v < batches; v++ {
				clk.Sleep(interval)
				if err := client.Checkpoint(int64(v), makeBatch(v)); err != nil {
					log.Fatalf("produce %d: %v", v, err)
				}
				written[v].Store(true)
			}
		})

		// Consumer: walk the priority order, waiting for production to
		// catch up when a wanted batch does not exist yet.
		var consumed int
		var deviationsSeen int64
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			for _, v := range priority {
				for !written[v].Load() {
					clk.Sleep(interval) // analytics idles until available
				}
				data, err := client.Restart(int64(v))
				if err != nil {
					log.Fatalf("consume %d: %v", v, err)
				}
				if !checkBatch(v, data) {
					log.Fatalf("consume %d: corrupt batch", v)
				}
				consumed++
				clk.Sleep(interval / 2) // analysis work
			}
			deviationsSeen = client.Stats().DeviationReads
		})

		wg.Wait()
		if err := client.Err(); err != nil {
			log.Fatal(err)
		}
		st := client.Stats()
		fmt.Printf("produced %d batches (%d MiB), consumed %d in priority order\n",
			st.CheckpointOps, st.CheckpointBytes>>20, consumed)
		fmt.Printf("hint-order deviations: %d (priority order was fully hinted)\n", deviationsSeen)
		fmt.Printf("application-observed: produce %.2f GB/s, consume %.2f GB/s, prefetch distance %.2f\n",
			st.CheckpointThroughput/(1<<30), st.RestoreThroughput/(1<<30), st.MeanPrefetchDistance)
		fmt.Printf("simulated time: %v\n", sim.Clock().Now().Round(time.Microsecond))
	})
}

// makeBatch builds a batch whose content is a deterministic function of
// its version, so the consumer can verify integrity end to end.
func makeBatch(v int) []byte {
	buf := make([]byte, batchSize)
	binary.LittleEndian.PutUint64(buf, uint64(v))
	h := fnv.New64a()
	binary.Write(h, binary.LittleEndian, uint64(v))
	seed := h.Sum64()
	for i := 8; i < len(buf); i += 8 {
		seed = seed*6364136223846793005 + 1442695040888963407
		binary.LittleEndian.PutUint64(buf[i:], seed)
	}
	return buf
}

func checkBatch(v int, data []byte) bool {
	want := makeBatch(v)
	if len(data) != len(want) {
		return false
	}
	for i := range data {
		if data[i] != want[i] {
			return false
		}
	}
	return true
}
