// Quickstart: the Listing 1 pattern from the paper — a forward pass that
// writes ten checkpoints, prefetch hints declaring they will be read back
// in reverse, and a backward pass that restores them.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"score"
)

func main() {
	sim, err := score.NewSim() // one DGX-A100-like node
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(func() {
		client, err := sim.NewClient(0, 0,
			score.WithGPUCache(64<<20),   // small caches so evictions happen
			score.WithHostCache(256<<20), // even in this toy run
		)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()

		const versions = 10
		payloads := make([][]byte, versions)

		// Declare the restore order up front (VELOC_Prefetch_enqueue):
		// the backward pass will read in reverse.
		for v := int64(versions - 1); v >= 0; v-- {
			client.PrefetchEnqueue(v)
		}

		// Forward pass: compute, checkpoint (VELOC_Checkpoint).
		for v := 0; v < versions; v++ {
			payloads[v] = bytes.Repeat([]byte{byte('A' + v)}, 16<<20)
			if err := client.Checkpoint(int64(v), payloads[v]); err != nil {
				log.Fatalf("checkpoint %d: %v", v, err)
			}
			client.Compute(10 * time.Millisecond)
		}

		// Begin prefetching now that the forward pass's flushes are no
		// longer competing for bandwidth (VELOC_Prefetch_start).
		client.PrefetchStart()

		// Backward pass: restore in reverse (VELOC_Restart).
		for v := versions - 1; v >= 0; v-- {
			restored, err := client.Restart(int64(v))
			if err != nil {
				log.Fatalf("restart %d: %v", v, err)
			}
			if !bytes.Equal(restored, payloads[v]) {
				log.Fatalf("restart %d: data mismatch", v)
			}
			client.Compute(10 * time.Millisecond)
		}

		st := client.Stats()
		fmt.Printf("checkpointed %d versions (%d MiB) at %.2f GB/s application-observed\n",
			st.CheckpointOps, st.CheckpointBytes>>20, st.CheckpointThroughput/(1<<30))
		fmt.Printf("restored     %d versions (%d MiB) at %.2f GB/s application-observed\n",
			st.RestoreOps, st.RestoreBytes>>20, st.RestoreThroughput/(1<<30))
		fmt.Printf("mean prefetch distance: %.2f checkpoints ahead\n", st.MeanPrefetchDistance)
		fmt.Printf("simulated time: %v\n", sim.Clock().Now().Round(time.Microsecond))
	})
}
