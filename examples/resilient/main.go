// resilient demonstrates the failure model: a deterministic fault
// injector kills the node-local SSD mid-run, the runtime degrades the
// flush chain to the parallel file system without losing a checkpoint,
// and after a "crash" a new process scrubs a corrupted durable file and
// restores the full history bit-exact by falling back to the PFS copy.
//
// Act 1 writes a history of checkpoints with durable SSD and PFS stores
// attached while the injected schedule takes the SSD tier down partway
// through; the flush chain reroutes to the PFS and drains completely.
// Between the acts, one surviving SSD checkpoint file is corrupted on
// disk — a silent media fault.
// Act 2 opens a fresh client on the same directories. The open-time scrub
// quarantines the corrupt file, recovery unions both stores, and the
// reverse replay (hinted automatically by the stride predictor) serves
// the quarantined version from the PFS store, re-staging it onto the SSD.
//
// Run with:
//
//	go run ./examples/resilient
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"score"
)

const (
	versions  = 24
	ckptBytes = 8 << 20
	// ssdOutage is when the injected schedule takes the SSD tier down:
	// both the NVMe link and the durable SSD store fail persistently
	// from this simulated instant on.
	ssdOutage = 60 * time.Millisecond
)

func main() {
	ssdDir, err := os.MkdirTemp("", "score-resilient-ssd-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ssdDir)
	pfsDir, err := os.MkdirTemp("", "score-resilient-pfs-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(pfsDir)

	payloads := make([][]byte, versions)
	for v := range payloads {
		payloads[v] = bytes.Repeat([]byte{byte(0x30 + v)}, ckptBytes)
	}

	// ---- Act 1: the SSD dies mid-run; the flush chain degrades. ----
	sim1, err := score.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	inj := sim1.NewFaultInjector(42,
		score.FailAfter(score.FaultNVMe, ssdOutage),
		score.FailAfter(score.FaultStoreWrite, ssdOutage))
	sim1.Run(func() {
		c, err := sim1.NewClient(0, 0,
			score.WithGPUCache(32<<20),
			score.WithHostCache(128<<20),
			score.WithStore(ssdDir),
			score.WithPFSStore(pfsDir),
			score.WithFaultInjector(inj))
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		for v := 0; v < versions; v++ {
			if err := c.Checkpoint(int64(v), payloads[v]); err != nil {
				log.Fatalf("checkpoint %d: %v", v, err)
			}
			c.Compute(5 * time.Millisecond)
		}
		if err := c.WaitFlush(); err != nil {
			log.Fatalf("flush chain did not survive the SSD outage: %v", err)
		}
		st := c.Stats()
		fmt.Printf("act 1: wrote %d checkpoints; SSD tier failed at %v (%d faults injected)\n",
			versions, ssdOutage, inj.Injected())
		fmt.Printf("act 1: degraded tiers %v after %d retries, %d degradation events — "+
			"flush chain drained to the PFS store, nothing lost\n",
			c.DegradedTiers(), st.Retries, st.Degradations)
	})
	// The process "dies" here; only the store directories survive.

	// A silent media fault between the acts: flip one byte mid-file in
	// the oldest checkpoint that reached the SSD store before the outage.
	victim := corruptOneSSDFile(ssdDir)
	fmt.Printf("interlude: corrupted the SSD file of version %d on disk\n", victim)

	// ---- Act 2: a new process scrubs, recovers, and reads back. ----
	sim2, err := score.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	sim2.Run(func() {
		c, err := sim2.NewClient(0, 0,
			score.WithGPUCache(32<<20),
			score.WithHostCache(128<<20),
			score.WithStore(ssdDir),
			score.WithPFSStore(pfsDir),
			score.WithScrubOnOpen(),
			score.WithAutoHints())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()

		recovered := c.RecoveredVersions()
		fmt.Printf("act 2: scrub quarantined versions %v; recovered %d versions [%d..%d] "+
			"from the union of both stores\n",
			c.QuarantinedVersions(), len(recovered), recovered[0], recovered[len(recovered)-1])
		if len(recovered) != versions {
			log.Fatalf("recovered %d versions, want %d", len(recovered), versions)
		}

		for v := versions - 1; v >= 0; v-- {
			got, err := c.Restart(int64(v))
			if err != nil {
				log.Fatalf("restart %d: %v", v, err)
			}
			if !bytes.Equal(got, payloads[v]) {
				log.Fatalf("restart %d: recovered data corrupt", v)
			}
			c.Compute(5 * time.Millisecond)
		}
		st := c.Stats()
		fmt.Printf("act 2: replayed the full history in reverse, bit-exact; "+
			"%d reads fell back to the PFS store, %d replicas re-staged onto the SSD\n",
			st.FallbackReads, st.Repopulations)
		fmt.Printf("act 2: predictor issued %d hints, mean prefetch distance %.2f\n",
			c.PredictedHints(), st.MeanPrefetchDistance)
	})
}

// corruptOneSSDFile flips a byte mid-file in the lowest-numbered
// checkpoint file of dir and returns its version number.
func corruptOneSSDFile(dir string) int64 {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(paths) == 0 {
		log.Fatalf("no SSD checkpoint files to corrupt in %s", dir)
	}
	sort.Strings(paths)
	path := paths[0]
	buf, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	var v int64
	fmt.Sscanf(filepath.Base(path), "%d.ckpt", &v)
	return v
}
