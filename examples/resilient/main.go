// resilient demonstrates the two capabilities this library adds beyond
// the paper: a durable checkpoint store (the VELOC-heritage
// restart-after-failure path) and automatic hint prediction.
//
// Act 1 writes a history of checkpoints with a durable store attached and
// then "crashes" (the client is simply abandoned mid-run).
// Act 2 opens a fresh client on the same store directory, recovers the
// persisted history, and replays it in reverse WITHOUT providing any
// prefetch hints — the stride predictor recognizes the reverse pattern
// after three restores and keeps the prefetcher ahead of the reads.
//
// Run with:
//
//	go run ./examples/resilient
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"time"

	"score"
)

const versions = 24

func main() {
	dir, err := os.MkdirTemp("", "score-resilient-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	payloads := make([][]byte, versions)
	for v := range payloads {
		payloads[v] = bytes.Repeat([]byte{byte(0x30 + v)}, 8<<20)
	}

	// ---- Act 1: the original process writes and "crashes". ----
	sim1, err := score.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	sim1.Run(func() {
		c, err := sim1.NewClient(0, 0,
			score.WithGPUCache(32<<20),
			score.WithHostCache(128<<20),
			score.WithStore(dir))
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		for v := 0; v < versions; v++ {
			if err := c.Checkpoint(int64(v), payloads[v]); err != nil {
				log.Fatalf("checkpoint %d: %v", v, err)
			}
			c.Compute(5 * time.Millisecond)
		}
		if err := c.WaitFlush(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("act 1: wrote %d checkpoints (%d MiB), flush chain drained to the durable store\n",
			versions, int64(versions)*8)
	})
	// The process "dies" here; only the store directory survives.

	// ---- Act 2: a new process recovers and reads back, unhinted. ----
	sim2, err := score.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	sim2.Run(func() {
		c, err := sim2.NewClient(0, 0,
			score.WithGPUCache(32<<20),
			score.WithHostCache(128<<20),
			score.WithStore(dir),
			score.WithAutoHints())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()

		recovered := c.RecoveredVersions()
		fmt.Printf("act 2: recovered %d checkpoint versions [%d..%d] from %s\n",
			len(recovered), recovered[0], recovered[len(recovered)-1], dir)

		var blocked time.Duration
		for v := versions - 1; v >= 0; v-- {
			start := sim2.Clock().Now()
			got, err := c.Restart(int64(v))
			if err != nil {
				log.Fatalf("restart %d: %v", v, err)
			}
			blocked += sim2.Clock().Now() - start
			if !bytes.Equal(got, payloads[v]) {
				log.Fatalf("restart %d: recovered data corrupt", v)
			}
			c.Compute(5 * time.Millisecond)
		}
		st := c.Stats()
		fmt.Printf("act 2: replayed the full history in reverse, bit-exact; "+
			"predictor issued %d hints (no application hints given)\n", c.PredictedHints())
		fmt.Printf("restore blocked %v total, %.2f GB/s application-observed, "+
			"mean prefetch distance %.2f\n",
			blocked.Round(time.Microsecond), st.RestoreThroughput/(1<<30), st.MeanPrefetchDistance)
	})
}
