// rankfail demonstrates the cluster failure model: a four-rank job on two
// nodes checkpoints under a group-commit tracker while partner-copy
// replication mirrors every rank's SSD flushes onto the next node's SSD.
// A seeded kill schedule then takes out node 0 mid-flush — both of its
// ranks die abruptly, their in-flight flushes resolve as lost, and the
// node's SSD contents (local stores and the partner replicas it hosted)
// are destroyed. The survivors keep running to completion.
//
// Act 2 restarts all four ranks. Each recovered store reports what it
// actually holds; replaying those reports into a fresh commit tracker
// recomputes the globally consistent frontier from ground truth, and
// every rank — including the two whose node died — restores that version
// bit-exact: the dead ranks' checkpoints survive on node 1's SSD as
// partner copies. Without partner copies the same kill leaves no version
// durable on every rank, and the job is reported unrecoverable instead of
// ever restoring wrong bytes.
//
// Run with:
//
//	go run ./examples/rankfail
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"score"
)

const (
	nodes       = 2
	gpusPerNode = 2
	ranks       = nodes * gpusPerNode
	versions    = 8
	ckptBytes   = 1 << 20
	interval    = 10 * time.Millisecond
	// killAt is when the seeded schedule kills node 0 — mid-job, with
	// flushes in flight.
	killAt = 2*interval + interval/2
)

// payload deterministically generates rank/version-unique bytes, so the
// restart can verify restored data against a regenerated reference.
func payload(rank int, version int64) []byte {
	b := make([]byte, ckptBytes)
	for i := range b {
		b[i] = byte(int64(rank+1)*31 + version*7 + int64(i))
	}
	return b
}

func localDir(root string, node, rank int) string {
	return filepath.Join(root, fmt.Sprintf("node%d", node), "local", fmt.Sprintf("rank%d", rank))
}

// partnerDir lives under the PARTNER node's directory: a copy survives
// this rank's node dying, and dies with the partner's node instead.
func partnerDir(root string, node, rank int) string {
	p := (node + 1) % nodes
	return filepath.Join(root, fmt.Sprintf("node%d", p), "partner", fmt.Sprintf("rank%d", rank))
}

func main() {
	root, err := os.MkdirTemp("", "score-rankfail-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// Act 1: run the job under the kill schedule.
	sim, err := score.NewSim(score.WithNodes(nodes), score.WithGPUsPerNode(gpusPerNode))
	if err != nil {
		log.Fatal(err)
	}
	tracker, err := sim.NewCommitTracker(ranks)
	if err != nil {
		log.Fatal(err)
	}
	inj := sim.NewFaultInjector(42)
	inj.AddKills(score.KillNode(0, killAt))

	fmt.Printf("act 1: %d ranks on %d nodes, node 0 dies at %v\n", ranks, nodes, killAt)
	sim.Run(func() {
		clients := make([]*score.Client, ranks)
		for node := 0; node < nodes; node++ {
			for g := 0; g < gpusPerNode; g++ {
				rank := node*gpusPerNode + g
				cl, err := sim.NewClient(node, g,
					score.WithGPUCache(16*ckptBytes),
					score.WithHostCache(16*ckptBytes),
					score.WithAsyncHostInit(),
					score.WithStore(localDir(root, node, rank)),
					score.WithPartnerCopy(partnerDir(root, node, rank)),
					score.WithCommitTracker(tracker, rank),
					score.WithFaultInjector(inj))
				if err != nil {
					log.Fatal(err)
				}
				clients[rank] = cl
			}
		}
		wg := sim.NewWaitGroup()
		for rank, cl := range clients {
			rank, cl := rank, cl
			wg.Add(1)
			sim.Clock().Go(func() {
				defer wg.Done()
				for v := int64(0); v < versions; v++ {
					if err := cl.Checkpoint(v, payload(rank, v)); err != nil {
						fmt.Printf("  rank %d died at %v (version %d was in flight)\n",
							rank, sim.Clock().Now(), v)
						return
					}
					cl.Compute(interval)
				}
				_ = cl.WaitFlush()
			})
		}
		wg.Wait()
		for rank, cl := range clients {
			st := cl.Stats()
			fmt.Printf("  rank %d: killed=%v partner copies=%d (%d KiB)\n",
				rank, cl.Killed(), st.PartnerCopies, st.PartnerCopyBytes>>10)
			cl.Close()
		}
	})
	lc, ok := tracker.LatestConsistent()
	fmt.Printf("  running tracker: dead ranks=%v committed=%v (latest %d, ok=%v), commit lag=%d\n\n",
		tracker.DeadRanks(), tracker.CommittedVersions(), lc, ok, tracker.CommitLag())

	// The node is gone: so is everything on its SSD.
	if err := os.RemoveAll(filepath.Join(root, "node0")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 0's SSD contents destroyed (local stores + hosted partner replicas)")

	// Act 2: restart, recompute the frontier from ground truth, restore.
	sim2, err := score.NewSim(score.WithNodes(nodes), score.WithGPUsPerNode(gpusPerNode))
	if err != nil {
		log.Fatal(err)
	}
	restartTracker, err := sim2.NewCommitTracker(ranks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("act 2: all ranks restart and restore the consistent frontier")
	sim2.Run(func() {
		clients := make([]*score.Client, ranks)
		for node := 0; node < nodes; node++ {
			for g := 0; g < gpusPerNode; g++ {
				rank := node*gpusPerNode + g
				cl, err := sim2.NewClient(node, g,
					score.WithGPUCache(16*ckptBytes),
					score.WithHostCache(16*ckptBytes),
					score.WithStore(localDir(root, node, rank)),
					score.WithPartnerCopy(partnerDir(root, node, rank)))
				if err != nil {
					log.Fatal(err)
				}
				clients[rank] = cl
				recovered := cl.RecoveredVersions()
				fmt.Printf("  rank %d recovered versions %v\n", rank, recovered)
				for _, v := range recovered {
					restartTracker.MarkDurable(rank, v)
				}
			}
		}
		latest, ok := restartTracker.LatestConsistent()
		if !ok {
			log.Fatal("no globally committed version survived — unrecoverable")
		}
		fmt.Printf("  latest consistent version: %d\n", latest)
		for rank, cl := range clients {
			got, err := cl.Restart(latest)
			if err != nil {
				log.Fatalf("rank %d restart: %v", rank, err)
			}
			if !bytes.Equal(got, payload(rank, latest)) {
				log.Fatalf("rank %d: restored bytes differ", rank)
			}
			st := cl.Stats()
			fmt.Printf("  rank %d restored v%d bit-exact (fallback reads: %d)\n",
				rank, latest, st.FallbackReads)
			cl.Close()
		}
	})
	fmt.Println("every rank restored the committed frontier — partner copies made the node loss survivable")
}
