package score

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"score/internal/cachebuf"
	"score/internal/ckptstore"
	"score/internal/core"
	"score/internal/device"
	"score/internal/fabric"
	"score/internal/faultinject"
	"score/internal/metrics"
	"score/internal/predict"
	"score/internal/simclock"
	"score/internal/trace"
)

// Clock is the time source visible to applications: simulated time only
// advances while tasks sleep or move data.
//
// Discipline: inside Sim.Run, start concurrent work with Clock.Go (not
// the go statement) and join it with a WaitGroup from Sim.NewWaitGroup
// (not raw channels) — the virtual clock can only advance time when it
// can see that every task is blocked.
type Clock interface {
	// Now returns the current simulated time since the Sim started.
	Now() time.Duration
	// Sleep suspends the calling task for d of simulated time (e.g. to
	// model computation between checkpoints).
	Sleep(d time.Duration)
	// Go starts fn as a simulated task (use instead of the go
	// statement inside Sim.Run).
	Go(fn func())
}

// WaitGroup joins simulated tasks; the virtual clock accounts for tasks
// blocked in Wait.
type WaitGroup struct{ inner *simclock.WaitGroup }

// Add adds delta to the counter.
func (w *WaitGroup) Add(delta int) { w.inner.Add(delta) }

// Done decrements the counter.
func (w *WaitGroup) Done() { w.inner.Done() }

// Wait blocks (in simulated time) until the counter reaches zero.
func (w *WaitGroup) Wait() { w.inner.Wait() }

// Sim is a simulated GPU cluster: one or more DGX-A100-like nodes sharing
// a parallel file system. All Score clients of a Sim contend on its
// links exactly as co-located processes would.
type Sim struct {
	clk     *simclock.Virtual
	real    *simclock.Real
	cluster *fabric.Cluster
	cfg     simConfig
	tracer  *trace.Tracer
	sampler *metrics.Sampler
	shared  map[int]*core.SharedHostCache // per-node pools (lazily built)
}

type simConfig struct {
	nodes      int
	node       fabric.NodeConfig
	hbm        int64
	realTime   float64 // 0 = virtual clock
	tracing    bool
	sample     time.Duration // gauge sampling cadence; 0 = off
	sharedHost int64         // per-node shared host cache pool size; 0 = private
}

// Option configures a Sim.
type Option func(*simConfig)

// WithNodes sets the number of compute nodes (default 1).
func WithNodes(n int) Option { return func(c *simConfig) { c.nodes = n } }

// WithGPUsPerNode sets the GPU (process) count per node (default 8).
func WithGPUsPerNode(n int) Option { return func(c *simConfig) { c.node.GPUs = n } }

// WithHBM sets per-GPU device memory in bytes (default 40 GiB, A100).
func WithHBM(bytes int64) Option { return func(c *simConfig) { c.hbm = bytes } }

// WithNodeBandwidths overrides the interconnect model: d2d is the
// device-local copy bandwidth, pcie the host link (shared by GPU pairs),
// nvme the aggregate node SSD bandwidth, pfs the per-node parallel file
// system share, all in bytes per simulated second.
func WithNodeBandwidths(d2d, pcie, nvme, pfs float64) Option {
	return func(c *simConfig) {
		c.node.D2DBandwidth = d2d
		c.node.PCIeBandwidth = pcie
		c.node.NVMeDrives = 1
		c.node.NVMePerDrive = nvme
		c.node.PFSBandwidth = pfs
	}
}

// WithSharedHostCache replaces every client's private pinned host cache
// with one pool of the given size per node, shared by the node's clients
// — the paper's future-work load balancing for variable-sized
// checkpoints. Per-client WithHostCache is then ignored.
func WithSharedHostCache(bytesPerNode int64) Option {
	return func(c *simConfig) { c.sharedHost = bytesPerNode }
}

// WithTracing records every checkpoint, restore, flush, and prefetch
// span of every client on the simulated timeline; export with
// Sim.WriteTrace for chrome://tracing or ui.perfetto.dev.
func WithTracing() Option {
	return func(c *simConfig) { c.tracing = true }
}

// WithRealTime runs the simulation against the wall clock, scaled by
// speedup (e.g. 1000 makes one simulated second pass in a millisecond).
// The default is a deterministic virtual clock that advances instantly.
func WithRealTime(speedup float64) Option {
	return func(c *simConfig) { c.realTime = speedup }
}

// WithSampling polls every client's cache/engine/queue gauges at the
// given simulated interval for the duration of Run. The timelines are
// available from Sim.SampledSeries afterwards, and — combined with
// WithTracing — appear as counter tracks in the Chrome trace export.
func WithSampling(interval time.Duration) Option {
	return func(c *simConfig) { c.sample = interval }
}

// NewSim builds a simulated cluster.
func NewSim(opts ...Option) (*Sim, error) {
	cfg := simConfig{nodes: 1, node: fabric.DGXA100(), hbm: 40 * fabric.GB}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.nodes < 1 {
		return nil, errors.New("score: need at least one node")
	}
	if cfg.hbm <= 0 {
		return nil, errors.New("score: HBM size must be positive")
	}
	s := &Sim{cfg: cfg}
	var clk simclock.Clock
	if cfg.realTime > 0 {
		s.real = simclock.NewReal(cfg.realTime)
		clk = s.real
	} else {
		s.clk = simclock.NewVirtual()
		clk = s.clk
	}
	cluster, err := fabric.NewCluster(clk, cfg.nodes, cfg.node)
	if err != nil {
		return nil, err
	}
	s.cluster = cluster
	if cfg.tracing {
		s.tracer = trace.New(clk.Now)
	}
	if cfg.sample > 0 {
		s.sampler = metrics.NewSampler(clk, cfg.sample, 0)
		if s.tracer != nil {
			s.sampler.SetCounterSink(func(name string, at time.Duration, v float64) {
				s.tracer.Counter(0, name, at, v)
			})
		}
	}
	if cfg.sharedHost < 0 {
		return nil, errors.New("score: shared host cache size must be positive")
	}
	s.shared = map[int]*core.SharedHostCache{}
	return s, nil
}

// WriteTrace exports the recorded timeline (WithTracing) in the Chrome
// trace-event format.
func (s *Sim) WriteTrace(w io.Writer) error {
	if s.tracer == nil {
		return errors.New("score: tracing not enabled (use WithTracing)")
	}
	return s.tracer.WriteJSON(w)
}

// Tracer returns the runtime tracer (nil unless WithTracing was given):
// the handle for the lifecycle flight recorder (Tracer().Flight()) and
// the bounded-retention drop counters.
func (s *Sim) Tracer() *trace.Tracer { return s.tracer }

// Run executes fn as the root simulated task and returns when it (and the
// simulated work it spawned and waited for) completes. All Sim and Client
// calls must happen inside Run.
func (s *Sim) Run(fn func()) {
	if s.sampler != nil {
		// The sampler task must start inside the run and stop before the
		// root task returns, or its timer alone would keep the virtual
		// clock advancing.
		inner := fn
		fn = func() {
			s.sampler.Start()
			defer s.sampler.Stop()
			inner()
		}
	}
	if s.clk != nil {
		s.clk.Run(fn)
		return
	}
	s.real.Run(fn)
}

// SampledSeries returns the gauge timelines recorded under WithSampling,
// name → chronological samples. Call after Run.
func (s *Sim) SampledSeries() map[string][]metrics.Sample {
	if s.sampler == nil {
		return nil
	}
	return s.sampler.Series()
}

// Clock returns the simulation's time source.
func (s *Sim) Clock() Clock {
	if s.clk != nil {
		return s.clk
	}
	return s.real
}

func (s *Sim) clock() simclock.Clock {
	if s.clk != nil {
		return s.clk
	}
	return s.real
}

// NewWaitGroup returns a clock-aware WaitGroup for joining tasks started
// with Clock.Go.
func (s *Sim) NewWaitGroup() *WaitGroup {
	return &WaitGroup{inner: simclock.NewWaitGroup(s.clock())}
}

// Nodes returns the node count.
func (s *Sim) Nodes() int { return s.cfg.nodes }

// GPUsPerNode returns the per-node GPU count.
func (s *Sim) GPUsPerNode() int { return s.cfg.node.GPUs }

// NewFaultInjector builds a deterministic, seedable fault injector on the
// simulation's clock. Attach it to clients with WithFaultInjector; the
// same seed and rules replay the identical fault schedule under the
// virtual clock.
func (s *Sim) NewFaultInjector(seed int64, rules ...faultinject.Rule) *faultinject.Injector {
	return faultinject.New(s.clock(), seed, rules...)
}

// linkInterceptor adapts the injector's verdicts to a fabric link (or the
// GPU's host-allocation engine, which reuses the same shape).
func linkInterceptor(inj *faultinject.Injector, site faultinject.Site) fabric.TransferInterceptor {
	return func(_ string, size int64) fabric.FaultDecision {
		d := inj.Decide(site, -1, size)
		return fabric.FaultDecision{Err: d.Err, Delay: d.Delay, BandwidthScale: d.Scale}
	}
}

// storeFaults adapts the injector to a durable store's read/write paths.
// Injected delays (gray slowness: DelayOps, JitterOps, StallWindow) are
// served by sleeping on the simulation clock, so a "slow store" genuinely
// slows the operation down instead of failing it.
type storeFaults struct {
	inj         *faultinject.Injector
	clk         simclock.Clock
	write, read faultinject.Site
}

func (h storeFaults) BeforeWrite(id int64, size int) error {
	d := h.inj.Decide(h.write, id, int64(size))
	if d.Delay > 0 {
		h.clk.Sleep(d.Delay)
	}
	return d.Err
}

func (h storeFaults) OnRead(id int64, raw []byte) ([]byte, error) {
	d := h.inj.Decide(h.read, id, int64(len(raw)))
	if d.Delay > 0 {
		h.clk.Sleep(d.Delay)
	}
	if d.Err != nil {
		return nil, d.Err
	}
	if d.Corrupt && len(raw) > 0 {
		// Silent bit-flip mid-file: the store's CRC layer must catch it.
		out := make([]byte, len(raw))
		copy(out, raw)
		out[len(out)/2] ^= 0x40
		return out, nil
	}
	return raw, nil
}

// openStore opens (and optionally scrubs) one durable store directory.
func openStore(dir string, scrub bool) (*ckptstore.Store, []int64, error) {
	st, corrupt, err := ckptstore.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	if scrub {
		q, err := st.Scrub()
		if err != nil {
			return nil, nil, fmt.Errorf("score: scrubbing %s: %w", dir, err)
		}
		return st, q, nil
	}
	if len(corrupt) > 0 {
		return nil, nil, fmt.Errorf("score: store %s holds %d corrupt checkpoint(s): %v",
			dir, len(corrupt), corrupt[0])
	}
	return st, nil, nil
}

// NewClient creates the Score runtime for the process pinned to the given
// node and GPU. Call inside Run.
func (s *Sim) NewClient(node, gpu int, opts ...ClientOption) (*Client, error) {
	if node < 0 || node >= s.cfg.nodes {
		return nil, fmt.Errorf("score: node %d out of range [0,%d)", node, s.cfg.nodes)
	}
	if gpu < 0 || gpu >= s.cfg.node.GPUs {
		return nil, fmt.Errorf("score: GPU %d out of range [0,%d)", gpu, s.cfg.node.GPUs)
	}
	cc := clientConfig{
		gpuCache:  4 * fabric.GB,
		hostCache: 32 * fabric.GB,
	}
	for _, o := range opts {
		o(&cc)
	}
	n := s.cluster.Nodes[node]
	d2d, pcie := n.GPULinks(gpu)
	dev := device.NewGPU(s.clock(), gpu, s.cfg.hbm, d2d, pcie, device.DefaultAllocCosts())
	var sharedPool *core.SharedHostCache
	if s.cfg.sharedHost > 0 {
		sharedPool = s.shared[node]
		if sharedPool == nil {
			sharedPool = core.NewSharedHostCache(s.clock(),
				fmt.Sprintf("node%d-sharedhost", node), s.cfg.sharedHost)
			s.shared[node] = sharedPool
		}
	}
	var store, pfsStore, partnerStore *ckptstore.Store
	var partnerPath fabric.Path
	var quarantined []int64
	if cc.storeDir != "" {
		st, q, err := openStore(cc.storeDir, cc.scrubOnOpen)
		if err != nil {
			return nil, err
		}
		store, quarantined = st, append(quarantined, q...)
	}
	if cc.pfsStoreDir != "" {
		st, q, err := openStore(cc.pfsStoreDir, cc.scrubOnOpen)
		if err != nil {
			return nil, err
		}
		pfsStore, quarantined = st, append(quarantined, q...)
	}
	if cc.partnerDir != "" {
		pn, err := partnerNode(node, s.cfg.nodes)
		if err != nil {
			return nil, err
		}
		st, q, err := openStore(cc.partnerDir, cc.scrubOnOpen)
		if err != nil {
			return nil, err
		}
		partnerStore, quarantined = st, append(quarantined, q...)
		// Replication crosses both nodes' NICs onto the partner's NVMe;
		// reads traverse the same path reversed.
		partner := s.cluster.Nodes[pn]
		partnerPath = fabric.Path{n.NIC, partner.NIC, partner.NVMe}
	}
	sort.Slice(quarantined, func(i, j int) bool { return quarantined[i] < quarantined[j] })
	var faultSeed int64
	if inj := cc.injector; inj != nil {
		faultSeed = inj.Seed()
		pcie.SetInterceptor(linkInterceptor(inj, faultinject.SitePCIe))
		// NVMe and PFS are node-shared links: the interceptor affects
		// every client on the node (see WithFaultInjector).
		n.NVMe.SetInterceptor(linkInterceptor(inj, faultinject.SiteNVMe))
		n.PFS.SetInterceptor(linkInterceptor(inj, faultinject.SitePFS))
		n.NIC.SetInterceptor(linkInterceptor(inj, faultinject.SitePartner))
		dev.SetAllocInterceptor(linkInterceptor(inj, faultinject.SiteHostAlloc))
		if store != nil {
			store.SetFaultHook(storeFaults{inj, s.clock(), faultinject.SiteStoreWrite, faultinject.SiteStoreRead})
		}
		if pfsStore != nil {
			pfsStore.SetFaultHook(storeFaults{inj, s.clock(), faultinject.SitePFSStoreWrite, faultinject.SitePFSStoreRead})
		}
		if partnerStore != nil {
			partnerStore.SetFaultHook(storeFaults{inj, s.clock(), faultinject.SitePartnerStoreWrite, faultinject.SitePartnerStoreRead})
		}
	}
	var commit core.CommitHook
	if cc.tracker != nil {
		commit = cc.tracker.inner
	}
	var evictPolicy cachebuf.Policy // zero value is PolicyScore, the default
	if cc.evictPolicy != "" {
		p, err := cachebuf.ParsePolicy(cc.evictPolicy)
		if err != nil {
			return nil, fmt.Errorf("score: %w", err)
		}
		evictPolicy = p
	}
	params := core.Params{
		Clock:               s.clock(),
		GPU:                 dev,
		NVMe:                n.NVMe,
		PFS:                 n.PFS,
		GPUCacheSize:        cc.gpuCache,
		HostCacheSize:       cc.hostCache,
		GPUEvictionPolicy:   evictPolicy,
		DiscardAfterRestore: cc.discard,
		PersistToPFS:        cc.persistPFS,
		AutoStartPrefetch:   cc.autoPrefetch,
		AsyncHostInit:       cc.asyncHostInit,
		Store:               store,
		PFSStore:            pfsStore,
		FaultSeed:           faultSeed,
		Tracer:              s.tracer,
		SharedHost:          sharedPool,
		GPUDirectStorage:    cc.gpuDirect,
		ChunkSize:           cc.chunkSize,
		FlushStreams:        cc.flushStreams,
		PartnerStore:        partnerStore,
		PartnerPath:         partnerPath,
		Rank:                cc.rank,
		Commit:              commit,
		Hedge:               cc.hedge,
	}
	// A nil *slo.Engine must stay a nil interface (every sink method is
	// nil-safe, but the hot-path gate is the interface nil check).
	if cc.slo != nil {
		params.SLO = cc.slo
	}
	client, err := core.New(params)
	if err != nil {
		return nil, err
	}
	if inj := cc.injector; inj != nil {
		if at, ok := inj.KillAt(node, gpu); ok {
			// The kill timer is its own clock task: it fires at the
			// scheduled virtual time and unwinds the client. Killing an
			// already closed client is a no-op, so a timer outliving a
			// normally-closed run is harmless.
			s.clock().Go(func() {
				if d := at - s.clock().Now(); d > 0 {
					s.clock().Sleep(d)
				}
				client.Kill()
			})
		}
	}
	if s.sampler != nil {
		client.RegisterProbes(s.sampler, fmt.Sprintf("node%d.gpu%d", node, gpu))
	}
	out := &Client{inner: client, dev: dev, clk: s.clock(), quarantined: quarantined,
		node: node, inj: cc.injector}
	if inj := cc.injector; inj != nil {
		if at, grace, ok := inj.PreemptAt(node, gpu); ok {
			// The preemption timer models the scheduler's reclaim protocol:
			// the notice arrives at the scheduled virtual time and starts
			// the deadline-bounded drain; the reclaim itself fires at
			// notice+grace regardless of how the drain fared — that is the
			// contract the drain's fail-open design exists for. Killing an
			// already closed client is a no-op.
			s.clock().Go(func() {
				if d := at - s.clock().Now(); d > 0 {
					s.clock().Sleep(d)
				}
				// Keep the manifest even when the reclaim overran the
				// drain (it still reports every version's outcome); only a
				// gate rejection returns an empty one.
				if m, err := client.Drain(grace); err == nil || len(m.Entries) > 0 {
					out.setDrainManifest(m)
				}
				if d := at + grace - s.clock().Now(); d > 0 {
					s.clock().Sleep(d)
				}
				client.Kill()
			})
		}
	}
	if cc.autoHints {
		p, err := predict.New(
			predict.HinterFunc(func(v int64) { client.PrefetchEnqueue(core.ID(v)) }),
			predict.Config{MinVersion: 0},
		)
		if err != nil {
			return nil, err
		}
		out.predictor = p
	}
	return out, nil
}
