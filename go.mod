module score

go 1.22
