package score_test

import (
	"testing"
	"time"

	"score"
)

// runAutoHintShot writes n checkpoints then restores them in reverse,
// with or without the stride predictor, returning total restore blocked
// time and the number of predicted hints.
func runAutoHintShot(t *testing.T, n int, auto bool) (blocked time.Duration, hints int64) {
	t.Helper()
	sim, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(func() {
		opts := []score.ClientOption{
			score.WithGPUCache(64 << 20), score.WithHostCache(256 << 20),
		}
		if auto {
			opts = append(opts, score.WithAutoHints())
		}
		c, err := sim.NewClient(0, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for v := 0; v < n; v++ {
			if err := c.CheckpointVirtual(int64(v), 16<<20); err != nil {
				t.Fatal(err)
			}
			c.Compute(2 * time.Millisecond)
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		for v := n - 1; v >= 0; v-- {
			start := sim.Clock().Now()
			if _, err := c.Restart(int64(v)); err != nil {
				t.Fatal(err)
			}
			blocked += sim.Clock().Now() - start
			c.Compute(5 * time.Millisecond)
		}
		hints = c.PredictedHints()
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
	})
	return blocked, hints
}

func TestAutoHintsDetectReversePattern(t *testing.T) {
	const n = 32
	withBlocked, hints := runAutoHintShot(t, n, true)
	withoutBlocked, noHints := runAutoHintShot(t, n, false)
	if noHints != 0 {
		t.Fatalf("predictor active without WithAutoHints: %d hints", noHints)
	}
	if hints == 0 {
		t.Fatal("predictor issued no hints on a pure reverse pattern")
	}
	if withBlocked >= withoutBlocked {
		t.Errorf("auto-hinted restores blocked %v, unhinted %v: prediction should help",
			withBlocked, withoutBlocked)
	}
	t.Logf("auto-hints: %d hints predicted, blocked %v vs %v unhinted", hints, withBlocked, withoutBlocked)
}

func TestAutoHintsHarmlessOnRandomOrder(t *testing.T) {
	// An unpredictable order must still restore correctly (predictions
	// are advisory only).
	sim, err := score.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(func() {
		c, err := sim.NewClient(0, 0,
			score.WithGPUCache(64<<20), score.WithHostCache(256<<20),
			score.WithAutoHints())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		const n = 16
		for v := 0; v < n; v++ {
			if err := c.CheckpointVirtual(int64(v), 8<<20); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.WaitFlush(); err != nil {
			t.Fatal(err)
		}
		order := []int64{3, 11, 0, 7, 14, 2, 9, 5, 15, 1, 8, 12, 4, 10, 6, 13}
		for _, v := range order {
			if _, err := c.Restart(v); err != nil {
				t.Fatalf("restart %d: %v", v, err)
			}
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
	})
}
