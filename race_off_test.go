//go:build !race

package score_test

// raceEnabled: see race_on_test.go.
const raceEnabled = false
